//! Deterministic fault-injection tests: every failure pillar of the
//! serve engine has a repeatable test, and no injected fault ever
//! corrupts a *different* request's results.

use std::sync::Arc;
use std::time::Duration;
use wbsn_dse::evaluator::{Evaluator, ModelEvaluator};
use wbsn_dse::pareto::ParetoArchive;
use wbsn_model::space::{DesignPoint, DesignSpace};
use wbsn_serve::chaos::{ChaosKnobs, ChaosSchedule, Fault};
use wbsn_serve::{QueryResult, ScenarioRequest, ServeConfig, ServeEngine, ServeError};

/// Installs a process-wide panic hook that swallows the engine's
/// injected-chaos panics (they are the *point* of these tests) while
/// delegating every real panic to the default reporter.
fn quiet_chaos_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<String>().is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// A small fixed space (16 points) shared by the targeted tests.
fn small_space() -> DesignSpace {
    let mut space = DesignSpace::case_study(2);
    space.cr_values.truncate(2);
    space.f_mcu_values.truncate(2);
    space.payload_values.truncate(1);
    space.order_pairs.truncate(1);
    space
}

fn all_points(space: &DesignSpace) -> Vec<DesignPoint> {
    let total = space.cardinality();
    (0..total).map(|n| space.point_at(n)).collect()
}

fn engine_with(chaos: ChaosSchedule, mut cfg: ServeConfig) -> ServeEngine {
    cfg.chaos = Some(Arc::new(chaos));
    ServeEngine::start(cfg)
}

const WAIT: Duration = Duration::from_mins(1);

/// Pillar 3 (panic isolation): an injected panic fails exactly the
/// targeted request with a typed `WorkerPanic`, sibling requests stay
/// bit-identical to the direct reference, the supervisor respawns the
/// worker, and the recycled scratch pool serves later requests
/// correctly (un-poisoned).
#[test]
fn injected_panic_fails_only_its_request() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    let chaos = ChaosSchedule::builder().panic_on(1, 0).build();
    let engine =
        engine_with(chaos, ServeConfig { workers: 2, chunk_points: 4, ..ServeConfig::default() });

    let handles: Vec<_> = (0..4)
        .map(|_| engine.submit(ScenarioRequest::evaluate(points.clone())).expect("alive"))
        .collect();
    for handle in handles {
        let seq = handle.seq();
        match handle.wait_timeout(WAIT) {
            Ok(response) => {
                assert_ne!(seq, 1, "request 1 is scheduled to panic");
                assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
            }
            Err(ServeError::WorkerPanic { message, .. }) => {
                assert_eq!(seq, 1, "only the targeted request may fail");
                assert!(message.starts_with("chaos:"), "typed panic carries the payload");
            }
            Err(other) => panic!("unexpected outcome for request {seq}: {other}"),
        }
    }

    // The pool is un-poisoned and the pool of workers recovered: a
    // fresh batch after the panic still answers bit-identically.
    let after = engine
        .submit(ScenarioRequest::evaluate(points.clone()))
        .expect("alive")
        .wait_timeout(WAIT)
        .expect("the respawned pool serves requests");
    assert_eq!(after.result.evaluations(), Some(expected.as_slice()));
    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.completed, 4);
}

/// Pillar 1 (deadlines): a chunk slowed past the request's budget
/// yields `DeadlineExceeded` whose partial response is the bitwise
/// prefix of the full answer; an unbudgeted sibling is unaffected.
#[test]
fn slowed_chunk_past_deadline_yields_bitwise_partial_prefix() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space); // 16 points -> 4 chunks of 4
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    // Sleep 400 ms before chunk 2 of request 0; its 60 ms budget
    // expires during the sleep, so chunks 0..=2 complete (the slept
    // chunk itself still runs: cancellation is cooperative, checked
    // between chunks) and chunk 3 is cancelled.
    let chaos = ChaosSchedule::builder().slow_on(0, 2, Duration::from_millis(400)).build();
    let engine =
        engine_with(chaos, ServeConfig { workers: 1, chunk_points: 4, ..ServeConfig::default() });

    let budgeted = engine
        .submit(ScenarioRequest::evaluate(points.clone()).with_budget(Duration::from_millis(60)))
        .expect("alive");
    let unbudgeted = engine.submit(ScenarioRequest::evaluate(points.clone())).expect("alive");

    match budgeted.wait_timeout(WAIT) {
        Err(ServeError::DeadlineExceeded { partial }) => {
            assert_eq!(partial.chunks_completed, 3);
            assert_eq!(partial.points_resolved, 12);
            assert_eq!(partial.result.evaluations(), Some(&expected[..12]));
        }
        other => panic!("expected a deadline expiry with partial results, got {other:?}"),
    }
    let sibling = unbudgeted.wait_timeout(WAIT).expect("unbudgeted sibling completes");
    assert_eq!(sibling.result.evaluations(), Some(expected.as_slice()));
    assert_eq!(engine.stats().deadline_expired, 1);
}

/// Pillar 2 (backpressure, forced): chaos-forced saturation makes one
/// submission fail fast with `QueueFull` without touching the others.
#[test]
fn forced_saturation_rejects_exactly_the_scheduled_submission() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    let chaos = ChaosSchedule::builder().reject_submission(1).build();
    let engine = engine_with(chaos, ServeConfig { workers: 1, ..ServeConfig::default() });

    let first = engine.try_submit(ScenarioRequest::evaluate(points.clone())).expect("accepted");
    assert_eq!(
        engine.try_submit(ScenarioRequest::evaluate(points.clone())).unwrap_err(),
        ServeError::QueueFull,
        "submission 1 is forced to saturate"
    );
    let third = engine.try_submit(ScenarioRequest::evaluate(points.clone())).expect("accepted");

    for handle in [first, third] {
        let response = handle.wait_timeout(WAIT).expect("accepted requests complete");
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 2);
}

/// Pillar 2 (backpressure, real): with the single worker pinned by a
/// slow chunk, submissions beyond the queue capacity fail fast with
/// `QueueFull` from genuine occupancy, and every accepted request
/// still answers bit-identically once the backlog drains.
#[test]
fn real_queue_saturation_fails_fast_and_backlog_drains_intact() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    // Request 0 sleeps 300 ms on its first chunk, pinning the worker.
    let chaos = ChaosSchedule::builder().slow_on(0, 0, Duration::from_millis(300)).build();
    let engine =
        engine_with(chaos, ServeConfig { workers: 1, queue_capacity: 2, ..ServeConfig::default() });

    let pinned = engine.try_submit(ScenarioRequest::evaluate(points.clone())).expect("accepted");
    // Give the worker time to dequeue request 0 and start sleeping.
    std::thread::sleep(Duration::from_millis(100));
    let queued: Vec<_> = (0..2)
        .map(|_| engine.try_submit(ScenarioRequest::evaluate(points.clone())).expect("fits"))
        .collect();
    assert_eq!(
        engine.try_submit(ScenarioRequest::evaluate(points.clone())).unwrap_err(),
        ServeError::QueueFull,
        "the bounded queue sheds load instead of buffering unboundedly"
    );

    for handle in std::iter::once(pinned).chain(queued) {
        let response = handle.wait_timeout(WAIT).expect("backlog drains");
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
    }
    assert_eq!(engine.stats().rejected, 1);
}

/// Pillar 2 (graceful degradation): a sweep dequeued behind a deep
/// backlog coarsens to the configured stride — reported, never silent
/// — and matches the strided reference bitwise; a sweep served after
/// the backlog drains is exact again.
#[test]
fn deep_backlog_degrades_sweeps_to_the_reported_stride() {
    quiet_chaos_panics();
    let space = small_space();
    let evaluator = ModelEvaluator::shimmer();

    let strided_reference = |stride: u128| {
        let mut front = ParetoArchive::new();
        let mut n = 0u128;
        while n < space.cardinality() {
            let point = space.point_at(n);
            if let Some(outcome) = evaluator.evaluate(&point) {
                front.insert(outcome, point);
            }
            n += stride;
        }
        front
    };

    // Request 0 sleeps 300 ms, building a 3-deep backlog behind it:
    // sweep 1 dequeues with depth 2 >= threshold -> degraded; sweep 3
    // dequeues with an empty queue -> exact.
    let chaos = ChaosSchedule::builder().slow_on(0, 0, Duration::from_millis(300)).build();
    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 1,
            degrade_threshold: 2,
            degrade_stride: 4,
            ..ServeConfig::default()
        },
    );

    let pinned =
        engine.try_submit(ScenarioRequest::evaluate(all_points(&space))).expect("accepted");
    std::thread::sleep(Duration::from_millis(100));
    let sweeps: Vec<_> = (0..3)
        .map(|_| engine.try_submit(ScenarioRequest::sweep(space.clone())).expect("fits"))
        .collect();

    pinned.wait_timeout(WAIT).expect("pinned request completes");
    let responses: Vec<_> =
        sweeps.into_iter().map(|h| h.wait_timeout(WAIT).expect("sweeps complete")).collect();

    assert!(responses[0].degraded, "first sweep saw the 2-deep backlog");
    assert_eq!(responses[0].stride, 4);
    assert_eq!(responses[0].result.front(), Some(&strided_reference(4)));

    let last = responses.last().expect("three sweeps");
    assert!(!last.degraded, "the drained queue restores exact sweeps");
    assert_eq!(last.stride, 1);
    assert_eq!(last.result.front(), Some(&strided_reference(1)));
    assert!(engine.stats().degraded_sweeps >= 1);
}

/// What the chaos schedule predetermines for one submission: the
/// *first* fault in chunk order decides the outcome, so the storm's
/// assertions are exact, not probabilistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Rejected at submission (`QueueFull`).
    Rejected,
    /// A panic fires before any slowdown: `WorkerPanic`. The request
    /// carries no budget, so the panic chunk is always reached.
    Panic,
    /// A slowdown fires first with at least one chunk after it: the
    /// tight budget expires during (or before) the sleep and the next
    /// deadline check cancels the request — `DeadlineExceeded`.
    Expired,
    /// No outcome-changing fault: the response must be exact. (A
    /// slowdown on the *last* chunk lands here: cancellation is
    /// cooperative and there is no check after the final chunk, so the
    /// request finishes late but complete — the request carries no
    /// budget so queue wait cannot expire it first.)
    Exact,
}

fn classify(chaos: &ChaosSchedule, seq: u64, chunks: usize) -> Expect {
    if chaos.rejects_submission(seq) {
        return Expect::Rejected;
    }
    for chunk in 0..chunks {
        match chaos.fault(seq, chunk) {
            Some(Fault::Panic) => return Expect::Panic,
            Some(Fault::Slow(_)) if chunk + 1 < chunks => return Expect::Expired,
            Some(Fault::Slow(_)) => return Expect::Exact,
            None => {}
        }
    }
    Expect::Exact
}

/// The combined acceptance storm: one *seeded* chaos schedule that
/// panics workers, slows chunks past deadlines, and saturates the
/// queue — all at once, across a stream of requests. Every request
/// resolves to exactly the outcome its scheduled fault dictates (no
/// hangs), every surviving response is bit-identical to the direct
/// reference, and afterwards the engine (workers respawned, pools
/// un-poisoned) still answers a clean batch exactly.
#[test]
fn seeded_chaos_storm_never_corrupts_surviving_requests() {
    const REQUESTS: u64 = 32;
    const CHUNKS: usize = 4;
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space); // 16 points -> 4 chunks of 4
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    let knobs = ChaosKnobs {
        requests: REQUESTS,
        chunks_per_request: CHUNKS,
        panic_per_mille: 80,
        slow_per_mille: 80,
        slow_duration: Duration::from_millis(300),
        reject_per_mille: 60,
        // Coalescing is off in this storm (the classic path is what
        // it pins down); the coalescer faults get their own seeded
        // storm in tests/coalesce.rs.
        super_panic_per_mille: 0,
        member_slow_per_mille: 0,
        member_slow_duration: Duration::ZERO,
        starve_per_mille: 0,
    };
    // Seed pinned so the storm is repeatable; the assertion below
    // double-checks it schedules every outcome class.
    let chaos = ChaosSchedule::seeded(0xC0FFEE, &knobs);
    let plan: Vec<Expect> = (0..REQUESTS).map(|seq| classify(&chaos, seq, CHUNKS)).collect();
    for class in [Expect::Rejected, Expect::Panic, Expect::Expired, Expect::Exact] {
        assert!(
            plan.contains(&class),
            "the pinned seed must schedule at least one {class:?} request"
        );
    }

    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 2,
            chunk_points: 4,
            queue_capacity: REQUESTS as usize,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            ..ServeConfig::default()
        },
    );

    let mut handles = Vec::new();
    let mut rejected = 0u64;
    for &expect in &plan {
        // Only slow-first requests carry a budget: 60 ms is roomy for
        // their fault-free prefix chunks (microseconds of work) and
        // hopeless against the 300 ms injected sleep, so their expiry
        // is certain whether it strikes in-queue or mid-request.
        let mut request = ScenarioRequest::evaluate(points.clone());
        if expect == Expect::Expired {
            request = request.with_budget(Duration::from_millis(60));
        }
        match engine.try_submit(request) {
            Ok(handle) => handles.push((handle, expect)),
            Err(ServeError::QueueFull) => {
                assert_eq!(expect, Expect::Rejected, "only scheduled saturation may reject");
                rejected += 1;
            }
            Err(other) => panic!("unexpected submission failure: {other}"),
        }
    }

    let (mut ok, mut panicked, mut expired) = (0u64, 0u64, 0u64);
    for (handle, expect) in handles {
        let seq = handle.seq();
        match handle.wait_timeout(WAIT) {
            Ok(response) => {
                assert_eq!(expect, Expect::Exact, "request {seq} completed unexpectedly");
                ok += 1;
                assert_eq!(
                    response.result.evaluations(),
                    Some(expected.as_slice()),
                    "request {seq} survived the storm but came back corrupted"
                );
            }
            Err(ServeError::WorkerPanic { message, .. }) => {
                assert_eq!(expect, Expect::Panic, "request {seq} panicked unexpectedly");
                panicked += 1;
                assert!(message.starts_with("chaos:"), "request {seq}: only injected panics");
            }
            Err(ServeError::DeadlineExceeded { partial }) => {
                assert_eq!(expect, Expect::Expired, "request {seq} expired unexpectedly");
                expired += 1;
                let resolved = usize::try_from(partial.points_resolved).expect("small");
                if let QueryResult::Evaluations(prefix) = &partial.result {
                    assert_eq!(
                        prefix.as_slice(),
                        &expected[..resolved],
                        "request {seq}: partial results must be a bitwise prefix"
                    );
                } else {
                    panic!("request {seq}: evaluation requests yield evaluation partials");
                }
            }
            Err(ServeError::WaitTimedOut) => panic!("request {seq} hung"),
            Err(other) => panic!("request {seq}: unexpected outcome {other}"),
        }
    }

    // Every outcome class fired, and every request resolved.
    assert!(rejected >= 1 && panicked >= 1 && expired >= 1 && ok >= 1);
    assert_eq!(ok + panicked + expired + rejected, REQUESTS);

    let stats = engine.stats();
    assert_eq!(stats.worker_panics, panicked);
    assert_eq!(stats.rejected, rejected);
    assert!(stats.respawns >= 1, "the supervisor respawned panicked workers");

    // After the storm: respawned workers, recycled scratch, exact
    // answers — the pool was never poisoned.
    for _ in 0..4 {
        let response = engine
            .submit(ScenarioRequest::evaluate(points.clone()))
            .expect("engine survives the storm")
            .wait_timeout(WAIT)
            .expect("clean requests complete");
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
    }
}

/// Engine drop with requests still queued: nothing hangs — queued
/// work is drained by the exiting workers, and handles whose engine
/// vanished entirely resolve to `EngineShutdown`, never a deadlock.
#[test]
fn dropping_the_engine_never_strands_a_caller() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);

    let chaos = ChaosSchedule::builder().slow_on(0, 0, Duration::from_millis(150)).build();
    let engine =
        engine_with(chaos, ServeConfig { workers: 1, queue_capacity: 8, ..ServeConfig::default() });
    let handles: Vec<_> = (0..4)
        .map(|_| engine.try_submit(ScenarioRequest::evaluate(points.clone())).expect("fits"))
        .collect();
    drop(engine);
    for handle in handles {
        // Drained-on-drop semantics: each handle resolves promptly to
        // either its real response or a typed shutdown error.
        match handle.wait_timeout(WAIT) {
            Ok(_) | Err(ServeError::EngineShutdown) => {}
            Err(other) => panic!("unexpected post-drop outcome: {other}"),
        }
    }
}
