//! The coalescing batch-former under test: fault-free super-batches
//! are observationally invisible (bitwise responses, transparent memo
//! accounting), and every coalescer fault point — panic mid-super-batch,
//! slow member, window-timer starvation — stays member-confined.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wbsn_dse::evaluator::{EnergyDelayEvaluator, Evaluator, LifetimeEvaluator, ModelEvaluator};
use wbsn_dse::Genome;
use wbsn_model::space::{DesignPoint, DesignSpace};
use wbsn_model::units::Hertz;
use wbsn_serve::chaos::{ChaosKnobs, ChaosSchedule};
use wbsn_serve::{
    Objectives, Query, QueryResult, ScenarioRequest, ServeConfig, ServeEngine, ServeError,
};

/// Installs a process-wide panic hook that swallows the engine's
/// injected-chaos panics (they are the *point* of these tests) while
/// delegating every real panic to the default reporter.
fn quiet_chaos_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<String>().is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// A small fixed space (16 points) shared by the targeted tests.
fn small_space() -> DesignSpace {
    let mut space = DesignSpace::case_study(2);
    space.cr_values.truncate(2);
    space.f_mcu_values.truncate(2);
    space.payload_values.truncate(1);
    space.order_pairs.truncate(1);
    space
}

fn all_points(space: &DesignSpace) -> Vec<DesignPoint> {
    let total = space.cardinality();
    (0..total).map(|n| space.point_at(n)).collect()
}

fn engine_with(chaos: ChaosSchedule, mut cfg: ServeConfig) -> ServeEngine {
    cfg.chaos = Some(Arc::new(chaos));
    ServeEngine::start(cfg)
}

/// The reference evaluator for an objective projection, over the same
/// Shimmer model `ServeEngine::start` uses.
fn direct(objectives: Objectives) -> Box<dyn Evaluator> {
    match objectives {
        Objectives::EnergyDelayPrd => Box::new(ModelEvaluator::shimmer()),
        Objectives::EnergyDelay => Box::new(EnergyDelayEvaluator::shimmer()),
        Objectives::EnergyDelayPrdLifetime => Box::new(LifetimeEvaluator::shimmer()),
    }
}

const WAIT: Duration = Duration::from_mins(1);

/// Coalescing happens and is invisible: with the single worker pinned,
/// co-queued small requests of one lane form exactly one super-batch
/// whose scattered responses are bitwise equal to the direct
/// reference, while a lone-lane sibling takes the classic path.
#[test]
fn pinned_worker_coalesces_queued_small_requests_into_one_super_batch() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);
    let expected_lifetime = LifetimeEvaluator::shimmer().evaluate_batch(&points);

    // Request 0 (a sweep: always coalesce-ineligible) sleeps 150 ms on
    // its first chunk, pinning the worker while the small requests
    // pile up in the queue.
    let chaos = ChaosSchedule::builder().slow_on(0, 0, Duration::from_millis(150)).build();
    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 1,
            coalesce_max_points: 16,
            coalesce_max_wait: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );

    let pinned = engine.submit(ScenarioRequest::sweep(space.clone())).expect("alive");
    std::thread::sleep(Duration::from_millis(50));
    let smalls: Vec<_> = (0..4)
        .map(|_| engine.submit(ScenarioRequest::evaluate(points.clone())).expect("alive"))
        .collect();
    // A lane-mate-less request: same turn, but its lane holds only it,
    // so it must ride the classic path, uncounted by the coalescer.
    let lone = engine
        .submit(
            ScenarioRequest::evaluate(points.clone())
                .with_objectives(Objectives::EnergyDelayPrdLifetime),
        )
        .expect("alive");

    pinned.wait_timeout(WAIT).expect("the pinned sweep completes");
    for handle in smalls {
        let response = handle.wait_timeout(WAIT).expect("coalesced members complete");
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
        assert_eq!(response.points_resolved, points.len() as u64);
        assert_eq!(response.memo_hits, 0);
        assert!(!response.degraded);
        assert_eq!(response.stride, 1);
    }
    let lone = lone.wait_timeout(WAIT).expect("the lone-lane request completes");
    assert_eq!(lone.result.evaluations(), Some(expected_lifetime.as_slice()));

    let stats = engine.stats();
    assert_eq!(stats.super_batches, 1, "one lane with peers -> one super-batch");
    assert_eq!(stats.coalesced_requests, 4, "the lone-lane request must not be counted");
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.worker_panics, 0);
}

/// Mixed objective lanes in one admission window form one super-batch
/// per lane, each scattering bitwise-exact responses.
#[test]
fn mixed_lanes_form_one_super_batch_per_lane() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected_full = ModelEvaluator::shimmer().evaluate_batch(&points);
    let expected_base = EnergyDelayEvaluator::shimmer().evaluate_batch(&points);

    let chaos = ChaosSchedule::builder().slow_on(0, 0, Duration::from_millis(150)).build();
    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 1,
            coalesce_max_points: 16,
            coalesce_max_wait: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );

    let pinned = engine.submit(ScenarioRequest::sweep(space.clone())).expect("alive");
    std::thread::sleep(Duration::from_millis(50));
    let mut handles = Vec::new();
    for i in 0..6 {
        let request = if i % 2 == 0 {
            ScenarioRequest::evaluate(points.clone())
        } else {
            ScenarioRequest::evaluate(points.clone()).with_objectives(Objectives::EnergyDelay)
        };
        handles.push((engine.submit(request).expect("alive"), i % 2 == 0));
    }

    pinned.wait_timeout(WAIT).expect("the pinned sweep completes");
    for (handle, full) in handles {
        let response = handle.wait_timeout(WAIT).expect("members complete");
        let expected = if full { &expected_full } else { &expected_base };
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
    }
    let stats = engine.stats();
    assert_eq!(stats.super_batches, 2, "two lanes with peers -> two super-batches");
    assert_eq!(stats.coalesced_requests, 6);
}

/// Coalescer fault point 1 (panic mid-super-batch): the panic fails
/// exactly the super-batch's members — each with its own typed
/// `WorkerPanic` — while the trailing ineligible request of the same
/// turn, the pinned opener, and post-respawn requests all stay exact.
#[test]
fn super_batch_panic_fails_only_its_members() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    let chaos = ChaosSchedule::builder()
        .slow_on(0, 0, Duration::from_millis(150))
        .panic_in_super_batch(2, 0)
        .build();
    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 1,
            coalesce_max_points: 16,
            coalesce_max_wait: Duration::from_millis(100),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            ..ServeConfig::default()
        },
    );

    // The pin must be coalesce-ineligible (a sweep), or it would open
    // the window itself and join the doomed super-batch.
    let pinned = engine.submit(ScenarioRequest::sweep(space.clone())).expect("alive");
    std::thread::sleep(Duration::from_millis(50));
    let members: Vec<_> = (0..4)
        .map(|_| engine.submit(ScenarioRequest::evaluate(points.clone())).expect("alive"))
        .collect();
    // Submitted last: the ineligible sweep closes the admission window
    // and trails the super-batch in the same worker turn — the turn
    // must finish it even though the super-batch poisoned the worker.
    let trailing = engine.submit(ScenarioRequest::sweep(space.clone())).expect("alive");

    let first = pinned.wait_timeout(WAIT).expect("the pinned opener completes");
    assert!(first.result.front().is_some());
    for handle in members {
        match handle.wait_timeout(WAIT) {
            Err(ServeError::WorkerPanic { message, .. }) => {
                assert!(message.starts_with("chaos:"), "typed panic carries the payload");
            }
            other => panic!("every super-batch member must fail typed, got {other:?}"),
        }
    }
    let swept = trailing.wait_timeout(WAIT).expect("the trailing single survives the turn");
    assert!(swept.result.front().is_some());

    // The supervisor respawned the poisoned worker and the pools are
    // clean: a fresh request answers bitwise-exactly.
    let after = engine
        .submit(ScenarioRequest::evaluate(points.clone()))
        .expect("alive")
        .wait_timeout(WAIT)
        .expect("the respawned pool serves requests");
    assert_eq!(after.result.evaluations(), Some(expected.as_slice()));

    let stats = engine.stats();
    assert_eq!(stats.worker_panics, 4, "one typed failure per member, nothing else");
    assert_eq!(stats.super_batches, 1);
    assert_eq!(stats.coalesced_requests, 4);
    assert!(stats.respawns >= 1, "the supervisor replaced the poisoned worker");
    assert_eq!(stats.completed, 3, "opener + trailing sweep + after-batch + nothing else");
}

/// Coalescer fault point 2 (slow member): a scheduled slow member
/// stalls its super-batch past a budgeted sibling's deadline; the
/// sibling leaves with a non-empty bitwise prefix of its own points
/// while the slow member itself completes bitwise-exactly.
#[test]
fn slow_member_expires_budgeted_sibling_with_bitwise_prefix() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let a_points = points[..6].to_vec();
    let b_points = points[10..].to_vec();
    let expected_a = ModelEvaluator::shimmer().evaluate_batch(&a_points);
    let expected_b = ModelEvaluator::shimmer().evaluate_batch(&b_points);

    // Request 0 pins the worker 100 ms; member A (seq 1) sleeps 150 ms
    // before each super-chunk. With chunk_points = 8 the 12 shared
    // points split into two chunks, so the deadline sweep before chunk
    // 1 (~t=350 ms) catches B's 325 ms budget with A's 6 points plus
    // B's first 2 evaluated: B's prefix is its own first 2 points.
    let chaos = ChaosSchedule::builder()
        .slow_on(0, 0, Duration::from_millis(100))
        .slow_member(1, Duration::from_millis(150))
        .build();
    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 1,
            chunk_points: 8,
            coalesce_max_points: 8,
            coalesce_max_wait: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );

    let pinned = engine.submit(ScenarioRequest::evaluate(points.clone())).expect("alive");
    std::thread::sleep(Duration::from_millis(40));
    let a = engine.submit(ScenarioRequest::evaluate(a_points)).expect("alive");
    let b = engine
        .submit(ScenarioRequest::evaluate(b_points).with_budget(Duration::from_millis(325)))
        .expect("alive");

    pinned.wait_timeout(WAIT).expect("the pinned opener completes");
    let slow = a.wait_timeout(WAIT).expect("the slow member itself completes");
    assert_eq!(slow.result.evaluations(), Some(expected_a.as_slice()));
    match b.wait_timeout(WAIT) {
        Err(ServeError::DeadlineExceeded { partial }) => {
            assert_eq!(partial.points_resolved, 2, "chunk 0 resolved B's first two points");
            assert_eq!(partial.result.evaluations(), Some(&expected_b[..2]));
        }
        other => panic!("the budgeted sibling must expire with a prefix, got {other:?}"),
    }

    let stats = engine.stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.worker_panics, 0, "expiry must not poison the worker or siblings");
    assert_eq!(stats.super_batches, 1);
    assert_eq!(stats.coalesced_requests, 2);
}

/// Coalescer fault point 3 (window-timer starvation): a starved
/// admission window is clamped to the opener's deadline — a budgeted
/// opener comes back expired at roughly its budget, far below the
/// configured window, while an unbudgeted opener burns the full
/// window and still answers bitwise-exactly.
#[test]
fn starved_window_is_clamped_to_the_opener_deadline() {
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let expected = ModelEvaluator::shimmer().evaluate_batch(&points);

    // Budgeted opener against an absurd 30 s window: the deadline
    // clamp must bound the starvation sleep by the 150 ms budget.
    let engine = engine_with(
        ChaosSchedule::builder().starve_window(0).build(),
        ServeConfig {
            workers: 1,
            coalesce_max_points: 16,
            coalesce_max_wait: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let outcome = engine
        .submit(ScenarioRequest::evaluate(points.clone()).with_budget(Duration::from_millis(150)))
        .expect("alive")
        .wait_timeout(WAIT);
    let elapsed = start.elapsed();
    match outcome {
        Err(ServeError::DeadlineExceeded { partial }) => {
            assert_eq!(partial.points_resolved, 0, "the whole budget was starved away");
        }
        other => panic!("the starved budgeted opener must expire, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "the clamp must cut the 30 s window to the 150 ms budget (elapsed {elapsed:?})"
    );

    // Unbudgeted opener: nothing clamps the window, so starvation
    // burns all of it — and the answer is still exact.
    let engine = engine_with(
        ChaosSchedule::builder().starve_window(0).build(),
        ServeConfig {
            workers: 1,
            coalesce_max_points: 16,
            coalesce_max_wait: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let response = engine
        .submit(ScenarioRequest::evaluate(points.clone()))
        .expect("alive")
        .wait_timeout(WAIT)
        .expect("starvation only delays an unbudgeted request");
    assert!(start.elapsed() >= Duration::from_millis(300), "the full window was burned");
    assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
}

/// The seeded coalescer storm: one repeatable schedule mixing
/// super-batch panics, slow members, and starved windows over a stream
/// of mixed-shape unbudgeted requests. Every request resolves to
/// exactly one typed outcome — a bitwise-exact response or a
/// `WorkerPanic` carrying the injected payload — the engine survives,
/// and the stats ledger balances.
#[test]
fn seeded_coalescer_storm_keeps_every_outcome_typed_and_exact() {
    const REQUESTS: usize = 32;
    quiet_chaos_panics();
    let space = small_space();
    let points = all_points(&space);
    let full = ModelEvaluator::shimmer();
    let reference_front = wbsn_dse::exhaustive::exhaustive(&space, &full, 1 << 20).front;

    let knobs = ChaosKnobs {
        requests: REQUESTS as u64 + 1,
        chunks_per_request: 4,
        // The classic fault points are pinned down by tests/chaos.rs;
        // this storm isolates the three coalescer fault points.
        panic_per_mille: 0,
        slow_per_mille: 0,
        slow_duration: Duration::ZERO,
        reject_per_mille: 0,
        super_panic_per_mille: 60,
        member_slow_per_mille: 80,
        member_slow_duration: Duration::from_millis(5),
        starve_per_mille: 80,
    };
    let chaos = ChaosSchedule::seeded(0xDAC2012, &knobs);
    assert!(chaos.scheduled_super_panics() >= 1, "the seed must schedule super-batch panics");
    assert!(chaos.scheduled_member_slowdowns() >= 1, "… and member slowdowns");
    assert!(chaos.scheduled_starvations() >= 1, "… and starved windows");

    let engine = engine_with(
        chaos,
        ServeConfig {
            workers: 2,
            chunk_points: 32,
            coalesce_max_points: 32,
            coalesce_max_wait: Duration::from_millis(2),
            queue_capacity: REQUESTS + 1,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(8),
            ..ServeConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(7);
    let mut handles = Vec::new();
    for i in 0..REQUESTS {
        let (request, expected) = match i % 4 {
            0 | 1 => {
                let start = rng.gen_range(0..points.len() - 4);
                let slice = points[start..start + 4].to_vec();
                let expected = full.evaluate_batch(&slice);
                let mut request = ScenarioRequest::evaluate(slice);
                if i % 8 >= 4 {
                    request = request.with_objectives(Objectives::EnergyDelay);
                }
                let expected = if i % 8 >= 4 {
                    direct(Objectives::EnergyDelay).evaluate_batch(&points[start..start + 4])
                } else {
                    expected
                };
                (request, Some(expected))
            }
            2 => {
                let genomes: Vec<Genome> =
                    (0..6).map(|_| Genome::random(&space, &mut rng)).collect();
                let decoded: Vec<DesignPoint> = genomes.iter().map(|g| g.decode(&space)).collect();
                (
                    ScenarioRequest::evaluate_genomes(space.clone(), genomes),
                    Some(full.evaluate_batch(&decoded)),
                )
            }
            // The bypass lane: sweeps are never coalesced, and must
            // ride the storm untouched between super-batches.
            _ => (ScenarioRequest::sweep(space.clone()), None),
        };
        handles.push((engine.submit(request).expect("alive"), expected));
    }

    let (mut ok, mut panicked) = (0u64, 0u64);
    for (handle, expected) in handles {
        let seq = handle.seq();
        match handle.wait_timeout(WAIT) {
            Ok(response) => {
                ok += 1;
                if let Some(evals) = expected {
                    assert_eq!(
                        response.result.evaluations(),
                        Some(evals.as_slice()),
                        "request {seq} survived the storm but came back corrupted"
                    );
                } else {
                    assert_eq!(response.result.front(), Some(&reference_front));
                }
            }
            Err(ServeError::WorkerPanic { message, .. }) => {
                panicked += 1;
                assert!(message.starts_with("chaos:"), "request {seq}: only injected panics");
            }
            Err(ServeError::WaitTimedOut) => panic!("request {seq} hung"),
            Err(other) => panic!("request {seq}: unexpected outcome {other}"),
        }
    }
    assert_eq!(ok + panicked, REQUESTS as u64, "every request resolves exactly once");
    assert!(panicked >= 1, "the pinned seed must fire at least one super-batch panic");

    let stats = engine.stats();
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.worker_panics, panicked);
    assert!(stats.super_batches >= 1, "the storm must actually coalesce");
    assert!(stats.respawns >= 1);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_expired, 0, "unbudgeted requests cannot expire");

    // After the storm: a clean batch answers bitwise-exactly.
    let expected = full.evaluate_batch(&points);
    for _ in 0..4 {
        let response = engine
            .submit(ScenarioRequest::evaluate(points.clone()))
            .expect("engine survives the storm")
            .wait_timeout(WAIT)
            .expect("clean requests complete");
        assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
    }
}

/// Random tiny design spaces (the dse property-test idiom): every grid
/// axis truncated to a random prefix so radices vary per case.
fn tiny_space() -> impl Strategy<Value = DesignSpace> {
    (1usize..=3, 1usize..=2, 1usize..=2, 1usize..=3, 1usize..=3).prop_map(
        |(n_cr, n_f, n_payload, n_orders, n_nodes)| {
            let mut space = DesignSpace::case_study(n_nodes);
            space.cr_values.truncate(n_cr);
            space.f_mcu_values = [4.0, 8.0][..n_f].iter().map(|&m| Hertz::from_mhz(m)).collect();
            space.payload_values.truncate(n_payload);
            space.order_pairs.truncate(n_orders);
            space
        },
    )
}

/// A random stream of small coalesce-eligible requests over `space`.
fn random_requests(space: &DesignSpace, n: usize, seed: u64) -> Vec<ScenarioRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = all_points(space);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..=8.min(points.len()));
            let objectives = Objectives::ALL[rng.gen_range(0..Objectives::ALL.len())];
            if rng.gen_bool(0.5) {
                let start = rng.gen_range(0..=points.len() - len);
                ScenarioRequest::evaluate(points[start..start + len].to_vec())
                    .with_objectives(objectives)
            } else {
                let genomes: Vec<Genome> =
                    (0..len).map(|_| Genome::random(space, &mut rng)).collect();
                ScenarioRequest::evaluate_genomes(space.clone(), genomes)
                    .with_objectives(objectives)
            }
        })
        .collect()
}

/// The direct (uncoalesced, unserved) reference for one request.
fn reference(
    space: &DesignSpace,
    request: &ScenarioRequest,
) -> Vec<Option<wbsn_dse::objective::ObjectiveVector>> {
    let evaluator = direct(request.objectives);
    match &request.query {
        Query::Evaluate(points) => evaluator.evaluate_batch(points),
        Query::EvaluateGenomes { genomes, .. } => {
            let decoded: Vec<DesignPoint> = genomes.iter().map(|g| g.decode(space)).collect();
            evaluator.evaluate_batch(&decoded)
        }
        Query::ParetoSweep { .. } => unreachable!("the stream holds no sweeps"),
    }
}

proptest! {
    // Satellite: any interleaving of concurrent small requests through
    // the coalescing engine produces responses bitwise-identical to
    // the direct reference — whatever super-batches happen to form —
    // and the per-response memo-hit ledger sums to the engine total.
    #[test]
    fn coalesced_interleavings_are_bitwise_identical_to_direct(
        space in tiny_space(),
        n_requests in 1usize..=24,
        workers in 1usize..=4,
        window_on in 0usize..=1,
        seed in 0u64..1_000_000,
    ) {
        let requests = random_requests(&space, n_requests, seed);
        let expected: Vec<_> = requests.iter().map(|r| reference(&space, r)).collect();

        let engine = ServeEngine::start(ServeConfig {
            workers,
            chunk_points: 32,
            coalesce_max_points: 32,
            coalesce_max_wait: if window_on == 1 {
                Duration::from_millis(1)
            } else {
                Duration::ZERO
            },
            queue_capacity: n_requests.max(1),
            ..ServeConfig::default()
        });
        let handles: Vec<_> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).expect("alive"))
            .collect();
        let mut ledger = 0u64;
        for (handle, expected) in handles.into_iter().zip(&expected) {
            let response = handle.wait_timeout(WAIT).expect("fault-free requests complete");
            prop_assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
            prop_assert_eq!(response.points_resolved, expected.len() as u64);
            prop_assert_eq!(response.stride, 1);
            prop_assert!(!response.degraded);
            ledger += response.memo_hits;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.memo_hits, ledger, "per-response hits must sum to the engine total");
        prop_assert_eq!(stats.completed, n_requests as u64);
        prop_assert_eq!(stats.worker_panics, 0);
    }

    // Satellite (memo-accounting transparency): on a single worker the
    // coalescing engine reports exactly the memo hits the uncoalesced
    // engine reports for the same FIFO request stream — gather dedup,
    // scatter-order recording, and Ref re-reads are invisible in the
    // ledger, not just in the values.
    #[test]
    fn single_worker_memo_accounting_matches_the_uncoalesced_engine(
        space in tiny_space(),
        n_requests in 1usize..=16,
        seed in 0u64..1_000_000,
    ) {
        let requests = random_requests(&space, n_requests, seed);

        let run = |coalesce_max_points: usize| {
            let engine = ServeEngine::start(ServeConfig {
                workers: 1,
                chunk_points: 32,
                coalesce_max_points,
                coalesce_max_wait: Duration::from_millis(1),
                queue_capacity: n_requests.max(1),
                ..ServeConfig::default()
            });
            let handles: Vec<_> = requests
                .iter()
                .map(|r| engine.submit(r.clone()).expect("alive"))
                .collect();
            let responses: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait_timeout(WAIT).expect("fault-free requests complete"))
                .collect();
            (responses, engine.stats())
        };

        let (coalesced, coalesced_stats) = run(32);
        let (classic, classic_stats) = run(0);
        prop_assert_eq!(classic_stats.super_batches, 0, "max_points = 0 must disable the former");
        for (a, b) in coalesced.iter().zip(&classic) {
            prop_assert_eq!(&a.result, &b.result);
            prop_assert_eq!(a.memo_hits, b.memo_hits, "per-request hit counts must match");
        }
        prop_assert_eq!(coalesced_stats.memo_hits, classic_stats.memo_hits);
        prop_assert_eq!(coalesced_stats.memo_len, classic_stats.memo_len);
    }
}

/// `QueryResult` equality in the proptest above needs `PartialEq`;
/// pin that the derive still covers the evaluation variant bitwise.
#[test]
fn query_result_equality_is_bitwise_over_evaluations() {
    let space = small_space();
    let points = all_points(&space);
    let a = QueryResult::Evaluations(ModelEvaluator::shimmer().evaluate_batch(&points));
    let b = QueryResult::Evaluations(ModelEvaluator::shimmer().evaluate_batch(&points));
    assert_eq!(a, b);
}
