//! Serve-vs-direct parity: fault-free responses are bit-identical to
//! driving the evaluators directly, for any worker count, chunk size,
//! and thread interleaving (satellite of the robustness PR).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use wbsn_dse::evaluator::{EnergyDelayEvaluator, Evaluator, LifetimeEvaluator, ModelEvaluator};
use wbsn_dse::exhaustive::exhaustive;
use wbsn_dse::Genome;
use wbsn_model::space::{DesignPoint, DesignSpace};
use wbsn_model::units::Hertz;
use wbsn_serve::{Objectives, Query, ScenarioRequest, ServeConfig, ServeEngine};

/// Random tiny design spaces (the dse property-test idiom): every grid
/// axis truncated to a random prefix so radices vary per case.
fn tiny_space() -> impl Strategy<Value = DesignSpace> {
    (1usize..=3, 1usize..=2, 1usize..=2, 1usize..=3, 1usize..=3).prop_map(
        |(n_cr, n_f, n_payload, n_orders, n_nodes)| {
            let mut space = DesignSpace::case_study(n_nodes);
            space.cr_values.truncate(n_cr);
            space.f_mcu_values = [4.0, 8.0][..n_f].iter().map(|&m| Hertz::from_mhz(m)).collect();
            space.payload_values.truncate(n_payload);
            space.order_pairs.truncate(n_orders);
            space
        },
    )
}

/// Every point of a space, in enumeration order.
fn all_points(space: &DesignSpace) -> Vec<DesignPoint> {
    let total = space.cardinality();
    assert!(total <= 4096, "tiny spaces only in these tests");
    let mut n = 0u128;
    let mut points = Vec::new();
    while n < total {
        points.push(space.point_at(n));
        n += 1;
    }
    points
}

/// The reference evaluator for an objective projection, over the same
/// Shimmer model `ServeEngine::start` uses.
fn direct(objectives: Objectives) -> Box<dyn Evaluator> {
    match objectives {
        Objectives::EnergyDelayPrd => Box::new(ModelEvaluator::shimmer()),
        Objectives::EnergyDelay => Box::new(EnergyDelayEvaluator::shimmer()),
        Objectives::EnergyDelayPrdLifetime => Box::new(LifetimeEvaluator::shimmer()),
    }
}

fn engine(workers: usize, chunk_points: usize) -> ServeEngine {
    ServeEngine::start(ServeConfig { workers, chunk_points, ..ServeConfig::default() })
}

proptest! {
    // Point-evaluation requests equal `evaluate_batch` bitwise for any
    // worker count and chunk size (chunk boundaries exercised hard:
    // chunks of 1..=7 points slice every batch differently).
    #[test]
    fn serve_points_match_direct_evaluate_batch(
        space in tiny_space(),
        workers in 1usize..=4,
        chunk_points in 1usize..=7,
        lane in 0usize..Objectives::ALL.len(),
    ) {
        let objectives = Objectives::ALL[lane];
        let points = all_points(&space);
        let expected = direct(objectives).evaluate_batch(&points);

        let engine = engine(workers, chunk_points);
        let request =
            ScenarioRequest::evaluate(points.clone()).with_objectives(objectives);
        let response = engine.try_submit(request).expect("queue empty").wait().expect("no faults");
        prop_assert_eq!(response.result.evaluations(), Some(expected.as_slice()));
        prop_assert_eq!(response.points_resolved, points.len() as u64);
        prop_assert!(!response.degraded);
        prop_assert_eq!(response.stride, 1);
    }

    // Genome requests equal decode-then-`evaluate_batch` bitwise, and
    // the cross-request memo is observationally transparent: a repeat
    // submission answers from cache with the identical response.
    #[test]
    fn serve_genomes_match_direct_and_memo_is_transparent(
        space in tiny_space(),
        workers in 1usize..=4,
        chunk_points in 1usize..=7,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let genomes: Vec<Genome> =
            (0..20).map(|_| Genome::random(&space, &mut rng)).collect();
        let decoded: Vec<DesignPoint> = genomes.iter().map(|g| g.decode(&space)).collect();
        let expected = direct(Objectives::EnergyDelayPrd).evaluate_batch(&decoded);

        let engine = engine(workers, chunk_points);
        let request = ScenarioRequest::evaluate_genomes(space.clone(), genomes.clone());
        let first = engine.try_submit(request.clone()).expect("queue empty").wait().expect("ok");
        prop_assert_eq!(first.result.evaluations(), Some(expected.as_slice()));

        let second = engine.try_submit(request).expect("queue empty").wait().expect("ok");
        prop_assert_eq!(second.result.evaluations(), Some(expected.as_slice()));
        // Every genome of the repeat hits the memo (duplicates in the
        // first batch may push hits above the repeat's own count).
        prop_assert!(second.memo_hits >= genomes.len() as u64);
        prop_assert_eq!(engine.stats().memo_hits, first.memo_hits + second.memo_hits);
    }

    // A fault-free sweep returns the exact exhaustive front, bitwise.
    #[test]
    fn serve_sweep_matches_exhaustive(
        space in tiny_space(),
        workers in 1usize..=4,
        chunk_points in 1usize..=7,
    ) {
        let reference = exhaustive(&space, &ModelEvaluator::shimmer(), 1 << 20);
        let engine = engine(workers, chunk_points);
        let response =
            engine.try_submit(ScenarioRequest::sweep(space)).expect("queue empty").wait().expect("ok");
        prop_assert_eq!(response.stride, 1);
        prop_assert!(!response.degraded);
        prop_assert_eq!(response.result.front(), Some(&reference.front));
    }
}

/// Many concurrent in-flight requests of mixed shapes: every response
/// is bitwise equal to its direct reference no matter how the worker
/// pool interleaves them, and the engine drains cleanly on drop.
#[test]
fn concurrent_mixed_requests_all_match_their_direct_reference() {
    let mut space = DesignSpace::case_study(2);
    space.cr_values.truncate(2);
    space.payload_values.truncate(1);
    space.order_pairs.truncate(2);
    let points = all_points(&space);

    let engine =
        ServeEngine::start(ServeConfig { workers: 4, chunk_points: 3, ..ServeConfig::default() });
    let full = ModelEvaluator::shimmer();
    let reference_evals = full.evaluate_batch(&points);
    let reference_front = exhaustive(&space, &full, 1 << 20).front;

    let mut rng = StdRng::seed_from_u64(42);
    let mut handles = Vec::new();
    for i in 0..24 {
        let request = match i % 3 {
            0 => ScenarioRequest::evaluate(points.clone()),
            1 => {
                let genomes: Vec<Genome> =
                    (0..12).map(|_| Genome::random(&space, &mut rng)).collect();
                ScenarioRequest::evaluate_genomes(space.clone(), genomes)
            }
            _ => ScenarioRequest::sweep(space.clone()),
        };
        let expected = match &request.query {
            Query::Evaluate(_) => Some(reference_evals.clone()),
            Query::EvaluateGenomes { genomes, .. } => {
                let decoded: Vec<DesignPoint> = genomes.iter().map(|g| g.decode(&space)).collect();
                Some(full.evaluate_batch(&decoded))
            }
            Query::ParetoSweep { .. } => None,
        };
        handles.push((engine.submit(request).expect("engine alive"), expected));
    }
    for (handle, expected) in handles {
        let response =
            handle.wait_timeout(Duration::from_mins(1)).expect("every request completes");
        if let Some(evals) = expected {
            assert_eq!(response.result.evaluations(), Some(evals.as_slice()));
        } else {
            assert_eq!(response.stride, 1, "no degradation below the backlog threshold");
            assert_eq!(response.result.front(), Some(&reference_front));
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.rejected, 0);
}
