//! `wbsn-serve`: a long-lived, fault-isolated, in-process query engine
//! for design-space-exploration scenario requests.
//!
//! The rest of the workspace answers one question per call: build an
//! evaluator, hand it a grid, wait. This crate keeps the expensive
//! state — warm `SoA` scratch pools, a sharded cross-request genome memo,
//! a pool of worker threads — alive across many requests, so callers
//! (sweep drivers, notebooks, benchmark harnesses) can submit a stream
//! of heterogeneous scenario queries and get robust, typed answers.
//!
//! # Request lifecycle
//!
//! 1. **Build** a [`ScenarioRequest`]: a [`Query`] (explicit points, a
//!    memoized genome batch, or an exhaustive Pareto sweep), an
//!    [`Objectives`] projection, and an optional wall-clock budget.
//! 2. **Submit** it via [`ServeEngine::try_submit`] (fails fast with
//!    [`ServeError::QueueFull`] under backpressure) or
//!    [`ServeEngine::submit`] (blocks, propagating backpressure to the
//!    producer). Acceptance stamps the request's deadline: queue wait
//!    counts against the budget.
//! 3. **The coalescer forms the worker's turn.** When
//!    [`ServeConfig::coalesce_max_points`] is non-zero, the worker
//!    whose turn it is at the queue holds the first *eligible* request
//!    (a point or genome batch of at most that many points — sweeps
//!    and larger requests always bypass) open for an admission window
//!    of at most [`ServeConfig::coalesce_max_wait`], clamped to the
//!    earliest member deadline so no budget is spent waiting for
//!    peers. Co-queued eligible requests merge into one super-batch
//!    per objective lane; the first ineligible arrival closes the
//!    window and runs right after, on the classic path.
//! 4. **The worker serves each unit of its turn** in
//!    [`ServeConfig::chunk_points`]-sized chunks through the existing
//!    [`Evaluator::evaluate_batch`] `SoA` engine, checking deadlines
//!    between chunks (cooperative cancellation — never mid-kernel). A
//!    super-batch evaluates the union of its members' points through
//!    one call on one warm scratch, then scatters per-request
//!    responses bitwise-identical to uncoalesced execution. Genome
//!    queries consult the sharded cross-request memo first and record
//!    fresh outcomes back; sweeps degrade to a strided subsample when
//!    the queue is deep (the stride is reported, never silent).
//! 5. **Wait** on the returned [`QueryHandle`]: [`QueryHandle::wait`]
//!    blocks until the typed outcome arrives;
//!    [`QueryHandle::wait_timeout`] bounds the caller's patience. A
//!    handle never hangs past engine shutdown.
//!
//! ```text
//!  submit / try_submit            bounded queue (backpressure)
//!  ───────────────────▶ [ q q q q q q ] ─────────────┐
//!                                                    ▼ worker's turn
//!                                     ┌─ coalescer admission window ─┐
//!      sweep / > coalesce_max_points  │  eligible: merge by lane     │
//!      ────────────── bypass ───────▶ │  ineligible: close window    │
//!                                     └──────┬───────────────────────┘
//!                                            ▼
//!                      turn units: [Super(lane A) | Super(lane B) | Single]
//!                                            ▼
//!                gather (memo hits, dedup) → evaluate_batch → scatter
//!                                            ▼
//!            per-request responses: Ok | DeadlineExceeded{bitwise prefix}
//!                                 | WorkerPanic (members only)
//! ```
//!
//! # Failure taxonomy
//!
//! Every failure is a typed [`ServeError`] (see [`error`] for the full
//! taxonomy): `QueueFull` backpressure, `DeadlineExceeded` with the
//! completed partial response attached, `WorkerPanic` when an
//! evaluation panics (the panic is confined to the offending request —
//! leased scratch is discarded by drop guards, never recycled into the
//! warm pool, and a supervisor respawns the worker with capped
//! exponential backoff), `EngineShutdown`, and the caller-side
//! `WaitTimedOut`.
//!
//! # Determinism
//!
//! Fault-free responses are **bit-identical** to driving the evaluator
//! directly: chunking, memoization, worker count, and thread
//! interleaving are all observationally transparent (the evaluation is
//! pure, the memo stores exact outcomes, and sweep archives insert in
//! enumeration order). Property tests in `tests/parity.rs` pin this;
//! the chaos suite in `tests/chaos.rs` pins that injected faults never
//! leak into a *different* request's answer.
//!
//! # Fault injection
//!
//! With the `chaos` cargo feature the engine consults an optional
//! deterministic [`chaos::ChaosSchedule`] — injected panics, per-chunk
//! slowness, forced queue saturation, keyed by submission sequence
//! number and chunk index, plus three coalescer fault points: a panic
//! mid-super-batch (fails exactly the unanswered members), a slow
//! member (stalls its super-batch so sibling deadline math is
//! exercised), and window-timer starvation (burns the whole admission
//! window, proving the deadline clamp). The crate's own tests enable
//! the feature via a self dev-dependency; production consumers compile
//! a hook-free engine.
//!
//! # Tuning knobs
//!
//! All on [`ServeConfig`]: worker count, queue capacity (backpressure
//! point), chunk size (cancellation granularity), default budget,
//! degradation threshold/stride, respawn backoff base/cap, memo
//! geometry, and the coalescer pair — `coalesce_max_points` (0
//! disables; raise to the largest request size that should share a
//! batch) and `coalesce_max_wait` (the latency you will trade for
//! batching; keep it well under a request's own service time). The
//! defaults serve the paper's case-study spaces well; see each field's
//! docs for how to trade latency against throughput.
//!
//! ```
//! use wbsn_serve::{ScenarioRequest, ServeConfig, ServeEngine};
//! use wbsn_model::space::DesignSpace;
//!
//! let engine = ServeEngine::start(ServeConfig { workers: 2, ..ServeConfig::default() });
//! let mut space = DesignSpace::case_study(2);
//! space.cr_values = vec![0.17, 0.38];
//! space.payload_values = vec![114];
//! space.order_pairs = vec![(6, 6)];
//! let handle = engine.try_submit(ScenarioRequest::sweep(space)).expect("queue has room");
//! let response = handle.wait().expect("sweep completes");
//! assert_eq!(response.stride, 1);
//! assert!(response.result.front().is_some());
//! ```
//!
//! [`Evaluator::evaluate_batch`]: wbsn_dse::evaluator::Evaluator::evaluate_batch

#![warn(missing_docs)]

#[cfg(feature = "chaos")]
pub mod chaos;
mod coalesce;
pub mod engine;
pub mod error;

pub use engine::{
    EngineStats, Objectives, Query, QueryHandle, QueryResult, ScenarioRequest, ScenarioResponse,
    ServeConfig, ServeEngine,
};
pub use error::ServeError;
