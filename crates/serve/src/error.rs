//! The failure taxonomy of the serve layer.
//!
//! Every way a request can fail is a typed, documented outcome — the
//! engine never hangs a caller and never silently drops a request:
//!
//! * [`ServeError::QueueFull`] — backpressure: the bounded submission
//!   queue was full (or fault injection forced saturation) and
//!   `try_submit` failed fast instead of buffering unboundedly.
//! * [`ServeError::DeadlineExceeded`] — the request's budget ran out
//!   between evaluation chunks; whatever prefix completed rides along
//!   as a partial response instead of being thrown away.
//! * [`ServeError::WorkerPanic`] — an evaluation panicked (poisoned
//!   input, model bug, injected fault). Only the offending request
//!   fails; the worker retires, its half-written scratch is discarded
//!   (never recycled into the warm pool), and a supervisor respawns a
//!   replacement with capped exponential backoff.
//! * [`ServeError::EngineShutdown`] — the engine dropped before the
//!   request could be served (or the response channel vanished with
//!   it).
//! * [`ServeError::WaitTimedOut`] — caller-side impatience: a
//!   `wait_timeout` elapsed before the response arrived. The request
//!   itself may still complete; this is a property of the wait, not of
//!   the request.

use crate::engine::ScenarioResponse;

/// A failed scenario request (see the module docs for the taxonomy).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue was full: fast-fail backpressure.
    QueueFull,
    /// The per-request budget expired between chunks. `partial` holds
    /// everything completed before expiry: for evaluation queries the
    /// outcome prefix covering the completed chunks, for sweeps the
    /// Pareto front over the points enumerated so far.
    DeadlineExceeded {
        /// The completed prefix of the response.
        partial: Box<ScenarioResponse>,
    },
    /// Evaluation of this request panicked; the panic was confined to
    /// this request and the worker was retired for respawn.
    WorkerPanic {
        /// Index of the worker that died serving the request.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The engine shut down before a response could be produced.
    EngineShutdown,
    /// A caller-side `wait_timeout` elapsed; the request may still be
    /// in flight.
    WaitTimedOut,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => write!(f, "submission queue full (backpressure)"),
            Self::DeadlineExceeded { partial } => write!(
                f,
                "deadline exceeded after {} completed chunk(s); partial response attached",
                partial.chunks_completed
            ),
            Self::WorkerPanic { worker, message } => {
                write!(f, "worker {worker} panicked serving the request: {message}")
            }
            Self::EngineShutdown => write!(f, "engine shut down before the request was served"),
            Self::WaitTimedOut => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for ServeError {}
