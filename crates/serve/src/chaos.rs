//! Deterministic fault injection for the serve engine.
//!
//! Compiled only with the `chaos` cargo feature (the crate's own tests
//! enable it; production consumers compile a hook-free engine). A
//! [`ChaosSchedule`] is an immutable table of faults keyed by
//! **submission sequence number** and **chunk index** — coordinates
//! that are deterministic for a given submission order no matter how
//! worker threads interleave — so every failure path has a repeatable
//! tier-1 test instead of folklore:
//!
//! * **injected panics** ([`Fault::Panic`]) fire inside the worker's
//!   per-request unwind boundary, exercising panic isolation, scratch
//!   discard, and supervisor respawn;
//! * **artificial slowness** ([`Fault::Slow`]) stretches one chunk past
//!   its request's deadline, exercising cooperative cancellation and
//!   partial responses;
//! * **forced queue saturation** ([`ChaosSchedule::rejects_submission`])
//!   makes a submission fail with `QueueFull` regardless of actual
//!   occupancy, exercising backpressure handling in callers.
//!
//! The coalescing batch-former adds three fault points of its own:
//!
//! * **mid-super-batch panics**
//!   ([`ChaosSchedule::panics_in_super_batch`]) fire at a
//!   `(request, super-chunk)` coordinate while the request is an
//!   unanswered member of a shared super-batch, exercising
//!   member-confined failure (every unanswered member gets its own
//!   `WorkerPanic`; settled members keep their responses);
//! * **slow members** ([`ChaosSchedule::member_slowdown`]) stall the
//!   whole super-batch before each chunk while the member is
//!   unanswered, exercising sibling deadline math mid-batch;
//! * **window starvation** ([`ChaosSchedule::starves_window`]) burns
//!   the full admission window of the request that opened it,
//!   exercising the deadline clamp on the window timer.
//!
//! Schedules come from an explicit [`ChaosScheduleBuilder`] (targeted
//! tests) or from [`ChaosSchedule::seeded`] (randomized-but-repeatable
//! sweeps: the same seed always yields the same schedule).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// One injected fault at a `(request, chunk)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic the worker at the top of this chunk.
    Panic,
    /// Sleep this long before evaluating the chunk.
    Slow(Duration),
}

/// An immutable, deterministic fault schedule (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    panics: HashSet<(u64, usize)>,
    slowdowns: HashMap<(u64, usize), Duration>,
    rejects: HashSet<u64>,
    super_panics: HashSet<(u64, usize)>,
    member_slowdowns: HashMap<u64, Duration>,
    starved_windows: HashSet<u64>,
}

impl ChaosSchedule {
    /// Starts building an explicit schedule.
    #[must_use]
    pub fn builder() -> ChaosScheduleBuilder {
        ChaosScheduleBuilder { schedule: Self::default() }
    }

    /// Generates a randomized schedule from `seed`: for every request
    /// `0..requests` the submission is rejected with probability
    /// `knobs.reject_per_mille`/1000, and every chunk `0..chunks` of an
    /// accepted request panics or slows with the respective
    /// probabilities (panic drawn first). Identical seeds and knobs
    /// yield identical schedules.
    #[must_use]
    pub fn seeded(seed: u64, knobs: &ChaosKnobs) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = Self::default();
        for seq in 0..knobs.requests {
            if rng.gen_range(0..1000u32) < knobs.reject_per_mille {
                schedule.rejects.insert(seq);
                continue;
            }
            for chunk in 0..knobs.chunks_per_request {
                if rng.gen_range(0..1000u32) < knobs.panic_per_mille {
                    schedule.panics.insert((seq, chunk));
                } else if rng.gen_range(0..1000u32) < knobs.slow_per_mille {
                    schedule.slowdowns.insert((seq, chunk), knobs.slow_duration);
                }
                if rng.gen_range(0..1000u32) < knobs.super_panic_per_mille {
                    schedule.super_panics.insert((seq, chunk));
                }
            }
            if rng.gen_range(0..1000u32) < knobs.member_slow_per_mille {
                schedule.member_slowdowns.insert(seq, knobs.member_slow_duration);
            }
            if rng.gen_range(0..1000u32) < knobs.starve_per_mille {
                schedule.starved_windows.insert(seq);
            }
        }
        schedule
    }

    /// The fault injected at `(seq, chunk)`, if any. A panic scheduled
    /// on the same coordinate as a slowdown wins.
    #[must_use]
    pub fn fault(&self, seq: u64, chunk: usize) -> Option<Fault> {
        if self.panics.contains(&(seq, chunk)) {
            return Some(Fault::Panic);
        }
        self.slowdowns.get(&(seq, chunk)).map(|&d| Fault::Slow(d))
    }

    /// Whether submission `seq` is forced to fail with `QueueFull`.
    #[must_use]
    pub fn rejects_submission(&self, seq: u64) -> bool {
        self.rejects.contains(&seq)
    }

    /// Number of scheduled panic coordinates.
    #[must_use]
    pub fn scheduled_panics(&self) -> usize {
        self.panics.len()
    }

    /// Number of scheduled slowdown coordinates.
    #[must_use]
    pub fn scheduled_slowdowns(&self) -> usize {
        self.slowdowns.len()
    }

    /// Number of scheduled submission rejections.
    #[must_use]
    pub fn scheduled_rejections(&self) -> usize {
        self.rejects.len()
    }

    /// Whether a super-batch holding unanswered member `seq` panics at
    /// super-chunk `chunk`. Applies only while the request is inside a
    /// shared super-batch; the classic path never consults it.
    #[must_use]
    pub fn panics_in_super_batch(&self, seq: u64, chunk: usize) -> bool {
        self.super_panics.contains(&(seq, chunk))
    }

    /// The per-chunk stall request `seq` imposes on its super-batch
    /// while it is an unanswered member, if scheduled.
    #[must_use]
    pub fn member_slowdown(&self, seq: u64) -> Option<Duration> {
        self.member_slowdowns.get(&seq).copied()
    }

    /// Whether the admission window request `seq` opens is starved:
    /// the former admits nobody and burns the whole (deadline-clamped)
    /// window before serving `seq` on the classic path.
    #[must_use]
    pub fn starves_window(&self, seq: u64) -> bool {
        self.starved_windows.contains(&seq)
    }

    /// Number of scheduled mid-super-batch panic coordinates.
    #[must_use]
    pub fn scheduled_super_panics(&self) -> usize {
        self.super_panics.len()
    }

    /// Number of requests scheduled as slow super-batch members.
    #[must_use]
    pub fn scheduled_member_slowdowns(&self) -> usize {
        self.member_slowdowns.len()
    }

    /// Number of requests whose admission window is starved.
    #[must_use]
    pub fn scheduled_starvations(&self) -> usize {
        self.starved_windows.len()
    }
}

/// Probabilities and shape for [`ChaosSchedule::seeded`].
#[derive(Debug, Clone)]
pub struct ChaosKnobs {
    /// Submission sequence numbers covered: `0..requests`.
    pub requests: u64,
    /// Chunk indices covered per request: `0..chunks_per_request`.
    pub chunks_per_request: usize,
    /// Per-chunk panic probability, in 1/1000.
    pub panic_per_mille: u32,
    /// Per-chunk slowdown probability, in 1/1000.
    pub slow_per_mille: u32,
    /// Sleep injected by each scheduled slowdown.
    pub slow_duration: Duration,
    /// Per-request submission-rejection probability, in 1/1000.
    pub reject_per_mille: u32,
    /// Per-chunk mid-super-batch panic probability, in 1/1000.
    pub super_panic_per_mille: u32,
    /// Per-request slow-member probability, in 1/1000.
    pub member_slow_per_mille: u32,
    /// Per-chunk stall injected by each scheduled slow member.
    pub member_slow_duration: Duration,
    /// Per-request admission-window starvation probability, in 1/1000.
    pub starve_per_mille: u32,
}

/// Builder for explicit, targeted [`ChaosSchedule`]s.
#[derive(Debug, Clone, Default)]
pub struct ChaosScheduleBuilder {
    schedule: ChaosSchedule,
}

impl ChaosScheduleBuilder {
    /// Panics the worker at the top of chunk `chunk` of request `seq`.
    #[must_use]
    pub fn panic_on(mut self, seq: u64, chunk: usize) -> Self {
        self.schedule.panics.insert((seq, chunk));
        self
    }

    /// Sleeps `delay` before evaluating chunk `chunk` of request `seq`.
    #[must_use]
    pub fn slow_on(mut self, seq: u64, chunk: usize, delay: Duration) -> Self {
        self.schedule.slowdowns.insert((seq, chunk), delay);
        self
    }

    /// Forces submission `seq` to fail with `QueueFull`.
    #[must_use]
    pub fn reject_submission(mut self, seq: u64) -> Self {
        self.schedule.rejects.insert(seq);
        self
    }

    /// Panics the super-batch holding unanswered member `seq` at
    /// super-chunk `chunk`.
    #[must_use]
    pub fn panic_in_super_batch(mut self, seq: u64, chunk: usize) -> Self {
        self.schedule.super_panics.insert((seq, chunk));
        self
    }

    /// Stalls request `seq`'s super-batch by `delay` before each chunk
    /// while `seq` is an unanswered member.
    #[must_use]
    pub fn slow_member(mut self, seq: u64, delay: Duration) -> Self {
        self.schedule.member_slowdowns.insert(seq, delay);
        self
    }

    /// Starves the admission window request `seq` opens.
    #[must_use]
    pub fn starve_window(mut self, seq: u64) -> Self {
        self.schedule.starved_windows.insert(seq);
        self
    }

    /// Finishes the schedule.
    #[must_use]
    pub fn build(self) -> ChaosSchedule {
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_targets_exact_coordinates() {
        let schedule = ChaosSchedule::builder()
            .panic_on(2, 0)
            .slow_on(3, 1, Duration::from_millis(50))
            .reject_submission(5)
            .panic_in_super_batch(7, 0)
            .slow_member(8, Duration::from_millis(20))
            .starve_window(9)
            .build();
        assert_eq!(schedule.fault(2, 0), Some(Fault::Panic));
        assert_eq!(schedule.fault(3, 1), Some(Fault::Slow(Duration::from_millis(50))));
        assert_eq!(schedule.fault(2, 1), None);
        assert!(schedule.rejects_submission(5));
        assert!(!schedule.rejects_submission(2));
        assert!(schedule.panics_in_super_batch(7, 0));
        assert!(!schedule.panics_in_super_batch(7, 1));
        assert_eq!(schedule.member_slowdown(8), Some(Duration::from_millis(20)));
        assert_eq!(schedule.member_slowdown(7), None);
        assert!(schedule.starves_window(9));
        assert!(!schedule.starves_window(8));
        assert_eq!(schedule.scheduled_super_panics(), 1);
        assert_eq!(schedule.scheduled_member_slowdowns(), 1);
        assert_eq!(schedule.scheduled_starvations(), 1);
    }

    #[test]
    fn panic_wins_over_slowdown_on_the_same_coordinate() {
        let schedule = ChaosSchedule::builder()
            .slow_on(1, 1, Duration::from_millis(10))
            .panic_on(1, 1)
            .build();
        assert_eq!(schedule.fault(1, 1), Some(Fault::Panic));
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let knobs = ChaosKnobs {
            requests: 64,
            chunks_per_request: 8,
            panic_per_mille: 100,
            slow_per_mille: 100,
            slow_duration: Duration::from_millis(1),
            reject_per_mille: 100,
            super_panic_per_mille: 100,
            member_slow_per_mille: 100,
            member_slow_duration: Duration::from_millis(1),
            starve_per_mille: 100,
        };
        let a = ChaosSchedule::seeded(7, &knobs);
        let b = ChaosSchedule::seeded(7, &knobs);
        assert_eq!(a.panics, b.panics);
        assert_eq!(a.slowdowns, b.slowdowns);
        assert_eq!(a.rejects, b.rejects);
        assert_eq!(a.super_panics, b.super_panics);
        assert_eq!(a.member_slowdowns, b.member_slowdowns);
        assert_eq!(a.starved_windows, b.starved_windows);
        assert!(
            a.scheduled_panics() + a.scheduled_slowdowns() + a.scheduled_rejections() > 0,
            "with 10% rates over 64x8 coordinates the schedule cannot be empty"
        );
        assert!(
            a.scheduled_super_panics() + a.scheduled_member_slowdowns() + a.scheduled_starvations()
                > 0,
            "with 10% rates the coalescer fault tables cannot all be empty"
        );
        let c = ChaosSchedule::seeded(8, &knobs);
        assert!(
            a.panics != c.panics || a.slowdowns != c.slowdowns || a.rejects != c.rejects,
            "different seeds must yield different schedules"
        );
    }
}
