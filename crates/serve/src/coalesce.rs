//! The coalescing batch-former: merges concurrent small requests into
//! shared `SoA` super-batches.
//!
//! A 16-point query pays the same queue handoff, scratch lease and
//! kernel dispatch as a 1024-point one, so under small-query
//! concurrency the fixed per-request cost dominates. The former sits
//! between the submission queue and the worker pool: the worker whose
//! turn it is at the queue holds the first *eligible* request (a point
//! or genome batch of at most [`ServeConfig::coalesce_max_points`]
//! points) open for [`ServeConfig::coalesce_max_wait`], admits
//! co-queued eligible peers into one shared super-batch per objective
//! lane, evaluates the union through a single
//! [`wbsn_dse::evaluator::Evaluator::evaluate_batch`] call on one warm
//! scratch, and scatters per-request responses back — bitwise
//! identical to uncoalesced execution.
//!
//! Design constraints, in order:
//!
//! 1. **No budget is spent waiting for peers.** The admission window
//!    is clamped to the earliest member deadline, so a tightly
//!    budgeted request never idles past its own deadline to benefit a
//!    sibling.
//! 2. **Failures stay member-confined.** A panic mid-super-batch fails
//!    exactly the unanswered members (each with its own
//!    [`ServeError::WorkerPanic`]); a member's deadline expiring
//!    mid-batch returns its bitwise prefix without poisoning siblings,
//!    which keep evaluating.
//! 3. **Memo accounting stays transparent.** Gather consults the
//!    cross-request memo per member in arrival order and dedups
//!    repeat genomes across members through a pending map; scatter
//!    records and re-reads strictly in member order, so a
//!    single-worker engine reports exactly the memo hits the
//!    uncoalesced engine would.
//!
//! Sweeps and requests larger than the threshold bypass the former
//! untouched and take the classic per-request path ([`engine::process`]).

use crate::engine::{
    self, Job, Objectives, Query, QueryResult, ScenarioRequest, ScenarioResponse, ServeConfig,
    Shared,
};
use crate::error::ServeError;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::Instant;
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::Genome;
use wbsn_model::space::{DesignPoint, DesignSpace};

/// One schedulable piece of a worker's turn.
pub(crate) enum Unit {
    /// A request served on the classic per-request path: a sweep, a
    /// request over the coalescing threshold, or an eligible request
    /// that found no lane-mates inside the window.
    Single(Job),
    /// Two or more coalesced requests sharing one evaluation batch.
    Super(SuperBatch),
}

/// How one member slot resolves against the shared batch.
#[derive(Clone, Copy)]
enum Slot {
    /// Answered from the cross-request memo at gather time.
    Hit(Option<ObjectiveVector>),
    /// Owns index `0` of the shared evaluation batch.
    Eval(usize),
    /// Same genome as the eval slot an earlier member owns; resolved
    /// through the memo at scatter time (a genuine cross-request hit
    /// once the owner has recorded it).
    Ref(usize),
}

/// One request inside a super-batch.
struct Member {
    /// Chaos-schedule coordinate (consulted by chaos builds only).
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    seq: u64,
    deadline: Option<Instant>,
    /// Taken when the member is answered; a member with no responder
    /// is settled and must not be touched again.
    responder: Option<Sender<Result<ScenarioResponse, ServeError>>>,
    shape: Shape,
    /// One slot per requested point/genome, in request order.
    slots: Vec<Slot>,
    /// Memo hits collected at gather time.
    gather_hits: u64,
}

/// The member's request payload.
enum Shape {
    Points(Vec<DesignPoint>),
    Genomes { space: DesignSpace, genomes: Vec<Genome> },
}

impl Member {
    /// Answers the member (at most once) and settles it.
    fn answer(&mut self, shared: &Shared, result: Result<ScenarioResponse, ServeError>) {
        if let Some(tx) = self.responder.take() {
            if result.is_ok() {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            let _ = tx.send(result);
        }
    }
}

/// A formed super-batch: members of one objective lane sharing one
/// evaluation batch.
pub(crate) struct SuperBatch {
    objectives: Objectives,
    members: Vec<Member>,
}

/// Is this job eligible to coalesce, and how many points does it
/// contribute? Sweeps and requests above the threshold always bypass.
fn eligible_len(job: &Job, cfg: &ServeConfig) -> Option<usize> {
    if cfg.coalesce_max_points == 0 {
        return None;
    }
    let cap = cfg.coalesce_max_points.min(cfg.chunk_points);
    let len = match &job.request.query {
        Query::Evaluate(points) => points.len(),
        Query::EvaluateGenomes { genomes, .. } => genomes.len(),
        Query::ParetoSweep { .. } => return None,
    };
    (len <= cap).then_some(len)
}

/// Converts an eligible job into a super-batch member, or returns it
/// unchanged when its shape cannot coalesce (sweeps never reach here;
/// the fallback keeps the conversion total without a panic site).
fn member_of(job: Job) -> Result<Member, Box<Job>> {
    let Job { seq, request, deadline, responder } = job;
    let ScenarioRequest { query, objectives, budget } = request;
    let shape = match query {
        Query::Evaluate(points) => Shape::Points(points),
        Query::EvaluateGenomes { space, genomes } => Shape::Genomes { space, genomes },
        q @ Query::ParetoSweep { .. } => {
            return Err(Box::new(Job {
                seq,
                request: ScenarioRequest { query: q, objectives, budget },
                deadline,
                responder,
            }));
        }
    };
    Ok(Member {
        seq,
        deadline,
        responder: Some(responder),
        shape,
        slots: Vec::new(),
        gather_hits: 0,
    })
}

/// Files `job` into its objective lane, keeping first-appearance lane
/// order so scatter order equals arrival order.
fn admit(lanes: &mut [Vec<Job>], lane_order: &mut Vec<usize>, job: Job) {
    let lane = job.request.objectives.lane();
    if lanes[lane].is_empty() {
        lane_order.push(lane);
    }
    lanes[lane].push(job);
}

/// Forms one worker turn from the just-dequeued `first` job. Called
/// with the queue mutex held (the turn at the single-consumer queue),
/// so the admission window also serializes against sibling workers —
/// exactly the window during which peers can only be waiting in the
/// queue anyway.
///
/// Returns the units to process, in admission order: per-lane
/// super-batches (lanes in first-appearance order), then the
/// ineligible job that closed the window, if any.
pub(crate) fn form_turn(shared: &Shared, first: Job, rx: &Receiver<Job>) -> Vec<Unit> {
    let cfg = &shared.cfg;
    let Some(mut total) = eligible_len(&first, cfg) else {
        return vec![Unit::Single(first)];
    };
    #[cfg(feature = "chaos")]
    if let Some(chaos) = &cfg.chaos {
        if chaos.starves_window(first.seq) {
            // Window-timer starvation: burn the whole (deadline-clamped)
            // window without admitting anyone, then serve the opener on
            // the classic path. Proves the deadline clamp: a budgeted
            // opener comes back expired at ~its budget, never at the
            // full window.
            starve(cfg, &first);
            return vec![Unit::Single(first)];
        }
    }
    let mut lanes: [Vec<Job>; Objectives::ALL.len()] = std::array::from_fn(|_| Vec::new());
    let mut lane_order: Vec<usize> = Vec::new();
    let mut window_end = Instant::now() + cfg.coalesce_max_wait;
    if let Some(d) = first.deadline {
        window_end = window_end.min(d);
    }
    admit(&mut lanes, &mut lane_order, first);
    let mut trailing: Option<Job> = None;
    while total < cfg.chunk_points {
        let now = Instant::now();
        if now >= window_end {
            break;
        }
        match rx.recv_timeout(window_end - now) {
            Ok(job) => {
                shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                if let Some(len) = eligible_len(&job, cfg) {
                    total += len;
                    if let Some(d) = job.deadline {
                        window_end = window_end.min(d);
                    }
                    admit(&mut lanes, &mut lane_order, job);
                } else {
                    // An ineligible request closes the window: it must
                    // not wait behind the peers' admission, and the
                    // classic path serves it right after the formed
                    // super-batches.
                    trailing = Some(job);
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
        }
    }
    let mut units: Vec<Unit> = Vec::new();
    for lane in lane_order {
        let jobs = std::mem::take(&mut lanes[lane]);
        let objectives = match jobs.first() {
            Some(job) => job.request.objectives,
            None => continue,
        };
        if jobs.len() == 1 {
            // A lane of one shares nothing; the classic path is
            // cheaper and keeps the classic fault coordinates.
            for job in jobs {
                units.push(Unit::Single(job));
            }
            continue;
        }
        let mut members: Vec<Member> = Vec::with_capacity(jobs.len());
        for job in jobs {
            match member_of(job) {
                Ok(member) => members.push(member),
                Err(job) => units.push(Unit::Single(*job)),
            }
        }
        units.push(Unit::Super(SuperBatch { objectives, members }));
    }
    if let Some(job) = trailing {
        units.push(Unit::Single(job));
    }
    units
}

/// Burns the (deadline-clamped) admission window without draining.
#[cfg(feature = "chaos")]
fn starve(cfg: &ServeConfig, first: &Job) {
    let mut window_end = Instant::now() + cfg.coalesce_max_wait;
    if let Some(d) = first.deadline {
        window_end = window_end.min(d);
    }
    let now = Instant::now();
    if window_end > now {
        std::thread::sleep(window_end - now);
    }
}

/// Processes every unit of a turn, each under its own unwind boundary.
/// Returns `false` when any unit panicked: the caller retires the
/// worker after the whole turn is answered, so jobs already pulled off
/// the queue are never stranded.
pub(crate) fn run_turn(shared: &Shared, worker: usize, turn: Vec<Unit>) -> bool {
    let mut clean = true;
    for unit in turn {
        match unit {
            Unit::Single(job) => {
                let Job { seq, request, deadline, responder } = job;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    engine::process(shared, seq, &request, deadline)
                }));
                match outcome {
                    Ok(result) => {
                        if result.is_ok() {
                            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = responder.send(result);
                    }
                    Err(payload) => {
                        // Confined to this request: answer it typed,
                        // finish the turn, retire afterwards. Pool drop
                        // guards discarded any leased scratch during
                        // the unwind, so the warm pool stays clean.
                        clean = false;
                        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                        let message = engine::panic_message(payload.as_ref());
                        let _ = responder.send(Err(ServeError::WorkerPanic { worker, message }));
                    }
                }
            }
            Unit::Super(mut batch) => {
                shared.stats.super_batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .coalesced_requests
                    .fetch_add(batch.members.len() as u64, Ordering::Relaxed);
                let outcome = catch_unwind(AssertUnwindSafe(|| batch.run(shared)));
                if let Err(payload) = outcome {
                    // The panic fails exactly the members not yet
                    // answered; settled members (scattered or expired
                    // before the panic) keep their responses.
                    clean = false;
                    let message = engine::panic_message(payload.as_ref());
                    for member in &mut batch.members {
                        if member.responder.is_some() {
                            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                            member.answer(
                                shared,
                                Err(ServeError::WorkerPanic { worker, message: message.clone() }),
                            );
                        }
                    }
                }
            }
        }
    }
    clean
}

impl SuperBatch {
    /// Gather → evaluate → scatter. Any panic unwinds to [`run_turn`],
    /// which fails the unanswered members.
    fn run(&mut self, shared: &Shared) {
        let evaluator = shared.evaluator(self.objectives);
        let memo = shared.memo(self.objectives);
        let chunk_size = shared.cfg.chunk_points;

        // Gather: resolve every member's slots against the memo, in
        // member (= arrival) order, and build the shared evaluation
        // batch. `pending` dedups repeat genomes ACROSS members only:
        // within one member, duplicates each get their own eval slot,
        // exactly like the classic path's miss pass (which evaluates
        // a chunk's duplicates before recording any of them).
        let mut eval_points: Vec<DesignPoint> = Vec::new();
        let mut pending: HashMap<Genome, usize> = HashMap::new();
        for member in &mut self.members {
            match &member.shape {
                Shape::Points(points) => {
                    member.slots.reserve(points.len());
                    for point in points {
                        member.slots.push(Slot::Eval(eval_points.len()));
                        eval_points.push(point.clone());
                    }
                }
                Shape::Genomes { space, genomes } => {
                    member.slots.reserve(genomes.len());
                    let mut introduced: Vec<(Genome, usize)> = Vec::new();
                    for genome in genomes {
                        if let Some(&idx) = pending.get(genome) {
                            member.slots.push(Slot::Ref(idx));
                        } else if let Some(cached) = memo.get(genome) {
                            member.gather_hits += 1;
                            member.slots.push(Slot::Hit(cached));
                        } else {
                            let idx = eval_points.len();
                            eval_points.push(genome.decode(space));
                            member.slots.push(Slot::Eval(idx));
                            introduced.push((genome.clone(), idx));
                        }
                    }
                    for (genome, idx) in introduced {
                        pending.entry(genome).or_insert(idx);
                    }
                }
            }
        }

        // Evaluate the union in chunk_points chunks — normally exactly
        // one evaluate_batch call on one warm scratch. Before each
        // chunk: chaos slow-member faults, then the deadline sweep
        // (expiring members leave with their bitwise prefix; the rest
        // of the batch keeps going), then chaos panic faults.
        let mut evaluated: Vec<Option<ObjectiveVector>> = Vec::with_capacity(eval_points.len());
        let total_chunks = eval_points.len().div_ceil(chunk_size).max(1);
        for chunk_idx in 0..total_chunks {
            #[cfg(feature = "chaos")]
            self.chaos_slow_members(shared);
            self.expire_members(shared, &evaluated, chunk_size);
            #[cfg(feature = "chaos")]
            self.chaos_panic(shared, chunk_idx);
            let start = chunk_idx * chunk_size;
            if start < eval_points.len() {
                let end = (start + chunk_size).min(eval_points.len());
                evaluated.extend(evaluator.evaluate_batch(&eval_points[start..end]));
            }
        }

        // Scatter: strictly in member order. Eval slots record into
        // the memo as the classic miss pass would; Ref slots re-read
        // the memo, so a hit on a sibling's just-recorded genome is
        // counted exactly when the classic sequential execution would
        // count it (and falls back to the shared batch's value when
        // the owner expired without recording).
        for i in 0..self.members.len() {
            let member = &mut self.members[i];
            if member.responder.is_none() {
                continue;
            }
            let mut outcomes: Vec<Option<ObjectiveVector>> = Vec::with_capacity(member.slots.len());
            let mut hits = member.gather_hits;
            match &member.shape {
                Shape::Points(_) => {
                    for slot in &member.slots {
                        if let Slot::Eval(idx) = slot {
                            outcomes.push(evaluated[*idx]);
                        }
                    }
                }
                Shape::Genomes { genomes, .. } => {
                    for (slot, genome) in member.slots.iter().zip(genomes) {
                        match slot {
                            Slot::Hit(cached) => outcomes.push(*cached),
                            Slot::Eval(idx) => {
                                let outcome = evaluated[*idx];
                                memo.record(genome.clone(), outcome);
                                outcomes.push(outcome);
                            }
                            Slot::Ref(idx) => {
                                if let Some(cached) = memo.get(genome) {
                                    hits += 1;
                                    outcomes.push(cached);
                                } else {
                                    let outcome = evaluated[*idx];
                                    memo.record(genome.clone(), outcome);
                                    outcomes.push(outcome);
                                }
                            }
                        }
                    }
                }
            }
            let points_resolved = outcomes.len() as u64;
            let chunks_completed = member.slots.len().div_ceil(chunk_size);
            member.answer(
                shared,
                Ok(ScenarioResponse {
                    result: QueryResult::Evaluations(outcomes),
                    stride: 1,
                    degraded: false,
                    chunks_completed,
                    points_resolved,
                    memo_hits: hits,
                }),
            );
        }
    }

    /// Answers every unanswered, non-empty member whose deadline has
    /// passed with its bitwise result prefix (everything resolvable
    /// from the chunks evaluated so far). Finer-grained than the
    /// classic path's chunk-granular partials — a super-chunk boundary
    /// can fall mid-member — but still a bitwise prefix of the full
    /// result. Siblings are untouched; the expired member's pending
    /// eval slots are simply never recorded into the memo.
    fn expire_members(
        &mut self,
        shared: &Shared,
        evaluated: &[Option<ObjectiveVector>],
        chunk_size: usize,
    ) {
        for member in &mut self.members {
            if member.responder.is_none()
                || member.slots.is_empty()
                || !engine::expired(member.deadline)
            {
                continue;
            }
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let mut prefix: Vec<Option<ObjectiveVector>> = Vec::new();
            let mut hits = 0u64;
            for slot in &member.slots {
                let resolved = match slot {
                    Slot::Hit(cached) => Some((*cached, true)),
                    Slot::Eval(idx) => (*idx < evaluated.len()).then(|| (evaluated[*idx], false)),
                    Slot::Ref(idx) => (*idx < evaluated.len()).then(|| (evaluated[*idx], true)),
                };
                let Some((outcome, hit)) = resolved else {
                    break;
                };
                hits += u64::from(hit);
                prefix.push(outcome);
            }
            let points_resolved = prefix.len() as u64;
            let chunks_completed = prefix.len() / chunk_size;
            member.answer(
                shared,
                Err(ServeError::DeadlineExceeded {
                    partial: Box::new(ScenarioResponse {
                        result: QueryResult::Evaluations(prefix),
                        stride: 1,
                        degraded: false,
                        chunks_completed,
                        points_resolved,
                        memo_hits: hits,
                    }),
                }),
            );
        }
    }

    /// Chaos slow-member faults: a scheduled member stalls the whole
    /// super-batch before each chunk while it is still unanswered —
    /// the stimulus for proving a sibling's deadline math survives a
    /// slow peer.
    #[cfg(feature = "chaos")]
    fn chaos_slow_members(&self, shared: &Shared) {
        let Some(chaos) = &shared.cfg.chaos else {
            return;
        };
        for member in &self.members {
            if member.responder.is_some() {
                if let Some(delay) = chaos.member_slowdown(member.seq) {
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Chaos mid-super-batch panic: fires when any still-unanswered
    /// member is scheduled at this chunk coordinate.
    #[cfg(feature = "chaos")]
    fn chaos_panic(&self, shared: &Shared, chunk: usize) {
        let Some(chaos) = &shared.cfg.chaos else {
            return;
        };
        let scheduled = self
            .members
            .iter()
            .find(|m| m.responder.is_some() && chaos.panics_in_super_batch(m.seq, chunk));
        if let Some(member) = scheduled {
            // verify: allow(panic-surface, reason = "chaos-injected fault: the panic IS the test stimulus; catch_unwind in run_turn converts it to one WorkerPanic per unanswered member")
            panic!("chaos: injected super-batch panic (request {}, chunk {chunk})", member.seq);
        }
    }
}
