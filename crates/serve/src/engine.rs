//! The long-lived query engine: worker pool, bounded queue, deadlines,
//! degradation, panic isolation, and supervised respawn.
//!
//! See the crate docs for the request lifecycle; this module holds the
//! moving parts. The design constraints, in order:
//!
//! 1. **No request hangs.** Every accepted job's responder is owned by
//!    exactly one worker while the job runs; the worker always sends
//!    exactly one response (success, typed failure, or `WorkerPanic`
//!    from the unwind boundary). Jobs still queued when the engine
//!    drops are drained by the exiting workers; jobs stranded by a
//!    dying engine resolve to [`ServeError::EngineShutdown`] when the
//!    queue itself drops.
//! 2. **Failures are confined.** `catch_unwind` wraps each request;
//!    the evaluator's scratch-pool drop guards discard (never recycle)
//!    states leased by an unwinding thread, so the warm pool cannot be
//!    poisoned. A panicked worker retires and the supervisor respawns
//!    a replacement with capped exponential backoff.
//! 3. **Answers stay bit-identical.** Fault-free responses equal the
//!    direct [`Evaluator::evaluate_batch`] / exhaustive-sweep results
//!    bitwise: chunking, memoization, worker count and interleaving
//!    are all observationally transparent (property-tested).

use crate::error::ServeError;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wbsn_dse::evaluator::{EnergyDelayEvaluator, Evaluator, LifetimeEvaluator, ModelEvaluator};
use wbsn_dse::memo::ShardedGenomeMemo;
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::pareto::ParetoArchive;
use wbsn_dse::Genome;
use wbsn_model::evaluate::WbsnModel;
use wbsn_model::lifetime::Battery;
use wbsn_model::space::{DesignPoint, DesignSpace};

// The projection repertoire lives with the evaluators in `wbsn-dse`;
// the engine re-exports it so request construction stays one import.
pub use wbsn_dse::objective::Objectives;

/// What a request asks the engine to compute.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Evaluate explicit design points, returning one outcome per point
    /// in order (`None` = infeasible), bit-identical to calling
    /// [`Evaluator::evaluate_batch`] directly.
    Evaluate(Vec<DesignPoint>),
    /// Evaluate index-encoded genomes against `space`, deduplicated
    /// through the engine's sharded cross-request memo. Outcomes are
    /// pure, so memoization is observationally transparent.
    EvaluateGenomes {
        /// The space the genomes are encoded against.
        space: DesignSpace,
        /// The genomes to evaluate, in response order.
        genomes: Vec<Genome>,
    },
    /// Exhaustively sweep `space` and return its Pareto front. Under
    /// overload the sweep degrades to an axis-stride subsample (the
    /// stride is reported in the response).
    ParetoSweep {
        /// The space to enumerate.
        space: DesignSpace,
    },
}

/// One scenario request: a query, an objective projection, and an
/// optional execution budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRequest {
    /// What to compute.
    pub query: Query,
    /// Which objectives to project.
    pub objectives: Objectives,
    /// Wall-clock budget measured from submission (queue wait counts).
    /// `None` falls back to [`ServeConfig::default_budget`].
    pub budget: Option<Duration>,
}

impl ScenarioRequest {
    /// A raw point-evaluation request with default objectives/budget.
    #[must_use]
    pub fn evaluate(points: Vec<DesignPoint>) -> Self {
        Self { query: Query::Evaluate(points), objectives: Objectives::default(), budget: None }
    }

    /// A memoized genome-evaluation request.
    #[must_use]
    pub fn evaluate_genomes(space: DesignSpace, genomes: Vec<Genome>) -> Self {
        Self {
            query: Query::EvaluateGenomes { space, genomes },
            objectives: Objectives::default(),
            budget: None,
        }
    }

    /// An exhaustive Pareto-sweep request.
    #[must_use]
    pub fn sweep(space: DesignSpace) -> Self {
        Self {
            query: Query::ParetoSweep { space },
            objectives: Objectives::default(),
            budget: None,
        }
    }

    /// Sets the wall-clock budget (measured from submission).
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the objective projection.
    #[must_use]
    pub fn with_objectives(mut self, objectives: Objectives) -> Self {
        self.objectives = objectives;
        self
    }
}

/// The computed payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Per-point (or per-genome) outcomes in request order.
    Evaluations(Vec<Option<ObjectiveVector>>),
    /// The Pareto front of a sweep.
    Front(ParetoArchive<DesignPoint>),
}

impl QueryResult {
    /// The outcome vector, when this is an evaluation result.
    #[must_use]
    pub fn evaluations(&self) -> Option<&[Option<ObjectiveVector>]> {
        match self {
            Self::Evaluations(v) => Some(v),
            Self::Front(_) => None,
        }
    }

    /// The Pareto front, when this is a sweep result.
    #[must_use]
    pub fn front(&self) -> Option<&ParetoArchive<DesignPoint>> {
        match self {
            Self::Front(front) => Some(front),
            Self::Evaluations(_) => None,
        }
    }
}

/// A completed (or, inside [`ServeError::DeadlineExceeded`], partial)
/// response.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResponse {
    /// The computed payload.
    pub result: QueryResult,
    /// Sweep enumeration stride: 1 = exact; >1 = the sweep was
    /// coarsened under load and covered every `stride`-th point.
    pub stride: usize,
    /// Whether the engine degraded this request (`stride > 1`).
    pub degraded: bool,
    /// Evaluation chunks completed.
    pub chunks_completed: usize,
    /// Points resolved into the result (memo hits included).
    pub points_resolved: u64,
    /// Points answered from the cross-request memo without evaluation.
    pub memo_hits: u64,
}

/// Tuning knobs of the engine (see crate docs for guidance).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue. Default: the machine's
    /// available parallelism (`WBSN_THREADS` respected).
    pub workers: usize,
    /// Bounded submission-queue capacity; `try_submit` fails fast with
    /// [`ServeError::QueueFull`] beyond it. Default 64.
    pub queue_capacity: usize,
    /// Points per evaluation chunk — the granularity of deadline
    /// checks and fault injection. Defaults to 1024 (the `SoA` kernel's
    /// chunk size, so each chunk runs inline on its worker through one
    /// pooled scratch).
    pub chunk_points: usize,
    /// Budget applied to requests that carry none. Default: `None`
    /// (no deadline).
    pub default_budget: Option<Duration>,
    /// Queue depth (jobs still waiting at dequeue time) at which sweep
    /// requests degrade to strided subsampling. Default 48.
    pub degrade_threshold: usize,
    /// Enumeration stride applied to degraded sweeps. Default 4.
    pub degrade_stride: usize,
    /// First respawn backoff after a worker panic; doubles per
    /// consecutive panic of the same slot. Default 5 ms.
    pub backoff_base: Duration,
    /// Respawn backoff cap. Default 160 ms.
    pub backoff_max: Duration,
    /// Shards of the cross-request genome memo. Default 16.
    pub memo_shards: usize,
    /// LRU capacity per memo shard. Default 4096.
    pub memo_capacity_per_shard: usize,
    /// Cross-request coalescing threshold: point/genome requests of at
    /// most this many points are eligible to merge with concurrent
    /// peers into one shared super-batch (sweeps and larger requests
    /// always bypass the coalescer). Default 0 — coalescing disabled,
    /// every request takes the classic per-request path.
    pub coalesce_max_points: usize,
    /// Admission-window length of the coalescer: how long a worker
    /// holds the first eligible request open for peers to join its
    /// super-batch. The window is deadline-aware — it is clamped to the
    /// earliest member deadline, so no request's budget is spent
    /// waiting for company. Default 200 µs.
    pub coalesce_max_wait: Duration,
    /// Fault-injection schedule (chaos builds only).
    #[cfg(feature = "chaos")]
    pub chaos: Option<Arc<crate::chaos::ChaosSchedule>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: wbsn_dse::parallel::num_threads(),
            queue_capacity: 64,
            chunk_points: 1024,
            default_budget: None,
            degrade_threshold: 48,
            degrade_stride: 4,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(160),
            memo_shards: 16,
            memo_capacity_per_shard: 4096,
            coalesce_max_points: 0,
            coalesce_max_wait: Duration::from_micros(200),
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// Point-in-time counters of the engine (monotonic except `memo_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected with `QueueFull` (real or chaos-forced).
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that expired their deadline.
    pub deadline_expired: u64,
    /// Requests failed by a worker panic.
    pub worker_panics: u64,
    /// Workers respawned by the supervisor.
    pub respawns: u64,
    /// Sweep requests served degraded (stride > 1).
    pub degraded_sweeps: u64,
    /// Requests answered from a shared multi-member super-batch.
    pub coalesced_requests: u64,
    /// Multi-member super-batches formed by the coalescer.
    pub super_batches: u64,
    /// Lookups answered by the cross-request genome memo.
    pub memo_hits: u64,
    /// Genomes currently resident in the memo.
    pub memo_len: u64,
}

/// Raw atomic counters behind [`EngineStats`].
#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) coalesced_requests: AtomicU64,
    pub(crate) super_batches: AtomicU64,
}

/// One queued request: everything a worker needs to serve and answer it.
pub(crate) struct Job {
    pub(crate) seq: u64,
    pub(crate) request: ScenarioRequest,
    pub(crate) deadline: Option<Instant>,
    pub(crate) responder: Sender<Result<ScenarioResponse, ServeError>>,
}

/// State shared by the engine handle, workers, and supervisor.
pub(crate) struct Shared {
    pub(crate) queue_rx: Mutex<Receiver<Job>>,
    /// Jobs accepted but not yet picked up by a worker.
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    /// Per-worker-slot consecutive-panic counters (respawn backoff);
    /// cleared by the slot's worker on its next successful request.
    pub(crate) consecutive_panics: Vec<AtomicU32>,
    /// The three-objective evaluator (shared warm scratch pools).
    full: ModelEvaluator,
    /// The energy/delay baseline evaluator.
    energy_delay: EnergyDelayEvaluator,
    /// The four-objective lifetime-extended evaluator.
    lifetime: LifetimeEvaluator,
    /// Cross-request memos, one per objective projection (outcomes of
    /// different projections have different shapes and must not mix);
    /// indexed by [`Objectives::lane`].
    memos: [ShardedGenomeMemo; Objectives::ALL.len()],
    pub(crate) cfg: ServeConfig,
    pub(crate) stats: Stats,
}

impl Shared {
    pub(crate) fn evaluator(&self, objectives: Objectives) -> &dyn Evaluator {
        match objectives {
            Objectives::EnergyDelayPrd => &self.full,
            Objectives::EnergyDelay => &self.energy_delay,
            Objectives::EnergyDelayPrdLifetime => &self.lifetime,
        }
    }

    pub(crate) fn memo(&self, objectives: Objectives) -> &ShardedGenomeMemo {
        &self.memos[objectives.lane()]
    }
}

/// The fault-injection hook: consults the installed schedule (chaos
/// builds only; compiled to nothing otherwise).
#[cfg(feature = "chaos")]
fn chaos_hook(shared: &Shared, seq: u64, chunk: usize) {
    use crate::chaos::Fault;
    if let Some(chaos) = &shared.cfg.chaos {
        match chaos.fault(seq, chunk) {
            // verify: allow(panic-surface, reason = "chaos-injected fault: the panic IS the test stimulus; catch_unwind in worker_loop converts it to ServeError::WorkerPanic")
            Some(Fault::Panic) => panic!("chaos: injected panic (request {seq}, chunk {chunk})"),
            Some(Fault::Slow(delay)) => std::thread::sleep(delay),
            None => {}
        }
    }
}

#[cfg(not(feature = "chaos"))]
fn chaos_hook(_shared: &Shared, _seq: u64, _chunk: usize) {}

/// Handle to one in-flight request. Dropping it abandons the response
/// (the request still runs to completion).
#[derive(Debug)]
pub struct QueryHandle {
    seq: u64,
    rx: Receiver<Result<ScenarioResponse, ServeError>>,
}

impl QueryHandle {
    /// The request's submission sequence number (the chaos-schedule
    /// coordinate).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the response arrives. Never hangs past engine
    /// shutdown: a vanished engine resolves to
    /// [`ServeError::EngineShutdown`].
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] the request failed with.
    pub fn wait(self) -> Result<ScenarioResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::EngineShutdown))
    }

    /// [`QueryHandle::wait`] with a caller-side patience bound.
    ///
    /// # Errors
    ///
    /// [`ServeError::WaitTimedOut`] when `timeout` elapses first (the
    /// request may still complete), otherwise as [`QueryHandle::wait`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<ScenarioResponse, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::WaitTimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::EngineShutdown),
        }
    }
}

/// The long-lived query engine (see crate docs).
///
/// Dropping the engine shuts it down: queued requests are drained by
/// the exiting workers, worker threads are joined, and later `wait`s
/// on abandoned handles resolve to [`ServeError::EngineShutdown`].
#[derive(Debug)]
pub struct ServeEngine {
    shared: Arc<Shared>,
    queue_tx: Option<SyncSender<Job>>,
    supervisor: Option<JoinHandle<()>>,
    next_seq: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("queue_depth", &self.queue_depth).finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Starts an engine over the Shimmer case-study model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is degenerate (zero workers, capacity, chunk
    /// size, stride, or memo shape).
    #[must_use]
    pub fn start(cfg: ServeConfig) -> Self {
        Self::start_with_model(WbsnModel::shimmer(), cfg)
    }

    /// Starts an engine over a custom model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is degenerate (zero workers, capacity, chunk
    /// size, stride, or memo shape).
    #[must_use]
    pub fn start_with_model(model: WbsnModel, cfg: ServeConfig) -> Self {
        assert!(cfg.workers > 0, "the engine needs at least one worker");
        assert!(cfg.queue_capacity > 0, "the submission queue needs capacity");
        assert!(cfg.chunk_points > 0, "chunks must hold at least one point");
        assert!(cfg.degrade_stride >= 1, "the degraded stride cannot be zero");
        let (queue_tx, queue_rx) = mpsc::sync_channel(cfg.queue_capacity);
        let workers = cfg.workers;
        let memos = Objectives::ALL
            .map(|_| ShardedGenomeMemo::new(cfg.memo_shards, cfg.memo_capacity_per_shard));
        let shared = Arc::new(Shared {
            queue_rx: Mutex::new(queue_rx),
            queue_depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            consecutive_panics: (0..workers).map(|_| AtomicU32::new(0)).collect(),
            full: ModelEvaluator::new(model.clone()),
            energy_delay: EnergyDelayEvaluator::new(model.clone()),
            lifetime: LifetimeEvaluator::new(model, Battery::shimmer()),
            memos,
            cfg,
            stats: Stats::default(),
        });

        let (obituary_tx, obituary_rx) = mpsc::channel();
        let handles: Vec<Option<JoinHandle<()>>> = (0..workers)
            .map(|id| {
                let worker = spawn_worker(Arc::clone(&shared), id, obituary_tx.clone());
                // verify: allow(panic-surface, reason = "startup-only: no requests are in flight before start returns, and a host that cannot spawn its initial threads cannot run an engine")
                Some(worker.expect("spawning a serve worker thread"))
            })
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wbsn-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &obituary_rx, &obituary_tx, handles))
                // verify: allow(panic-surface, reason = "startup-only: no requests are in flight before start returns; once running, thread respawns go through the fallible supervisor path")
                .expect("spawning the supervisor thread")
        };
        Self {
            shared,
            queue_tx: Some(queue_tx),
            supervisor: Some(supervisor),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Submits a request without blocking: full queues fail fast.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] under backpressure (or chaos-forced
    /// saturation), [`ServeError::EngineShutdown`] if the engine died.
    pub fn try_submit(&self, request: ScenarioRequest) -> Result<QueryHandle, ServeError> {
        self.submit_inner(request, false)
    }

    /// Submits a request, blocking while the queue is full — the
    /// backpressure-propagating variant of [`ServeEngine::try_submit`].
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] only when chaos forces saturation,
    /// [`ServeError::EngineShutdown`] if the engine died.
    pub fn submit(&self, request: ScenarioRequest) -> Result<QueryHandle, ServeError> {
        self.submit_inner(request, true)
    }

    fn submit_inner(
        &self,
        request: ScenarioRequest,
        block: bool,
    ) -> Result<QueryHandle, ServeError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "chaos")]
        if let Some(chaos) = &self.shared.cfg.chaos {
            if chaos.rejects_submission(seq) {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::QueueFull);
            }
        }
        let budget = request.budget.or(self.shared.cfg.default_budget);
        let deadline = budget.map(|b| Instant::now() + b);
        let (responder, rx) = mpsc::channel();
        let job = Job { seq, request, deadline, responder };
        let Some(queue_tx) = self.queue_tx.as_ref() else {
            return Err(ServeError::EngineShutdown);
        };
        // Count the job as queued BEFORE the send: a worker may pick it
        // up (and decrement) the instant it lands in the channel.
        self.shared.queue_depth.fetch_add(1, Ordering::AcqRel);
        let send_result = if block {
            queue_tx.send(job).map_err(|_| ServeError::EngineShutdown)
        } else {
            queue_tx.try_send(job).map_err(|e| match e {
                TrySendError::Full(_) => ServeError::QueueFull,
                TrySendError::Disconnected(_) => ServeError::EngineShutdown,
            })
        };
        match send_result {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(QueryHandle { seq, rx })
            }
            Err(e) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                if matches!(e, ServeError::QueueFull) {
                    self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Jobs accepted but not yet picked up by a worker.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Acquire)
    }

    /// A point-in-time snapshot of the engine's counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            deadline_expired: s.deadline_expired.load(Ordering::Relaxed),
            worker_panics: s.panics.load(Ordering::Relaxed),
            respawns: s.respawns.load(Ordering::Relaxed),
            degraded_sweeps: s.degraded.load(Ordering::Relaxed),
            coalesced_requests: s.coalesced_requests.load(Ordering::Relaxed),
            super_batches: s.super_batches.load(Ordering::Relaxed),
            memo_hits: self.shared.memos.iter().map(ShardedGenomeMemo::hits).sum(),
            memo_len: self.shared.memos.iter().map(|m| m.len() as u64).sum(),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Disconnect the queue: workers drain the remaining jobs and
        // exit; the supervisor reaps them and follows.
        self.queue_tx = None;
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns worker `id`, which drains the queue until it disconnects or
/// the worker dies on a caught panic. Spawn failure (host thread
/// exhaustion) is returned, not panicked: at startup the caller treats
/// it as fatal, but the supervisor's respawn path must survive it.
fn spawn_worker(
    shared: Arc<Shared>,
    id: usize,
    obituary_tx: Sender<usize>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("wbsn-serve-worker-{id}"))
        .spawn(move || worker_loop(&shared, id, &obituary_tx))
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

// verify: hot-path-begin(worker-drain-loop)
fn worker_loop(shared: &Arc<Shared>, id: usize, obituary_tx: &Sender<usize>) {
    loop {
        // Lock held across the blocking recv AND the coalescer's
        // admission window: the mutex doubles as the worker's turn at
        // the shared single-consumer queue (idle workers park on the
        // mutex, the holder parks in recv), and the turn holder is the
        // one forming super-batches from co-queued peers.
        let turn = {
            let rx = shared.queue_rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(job) => {
                    shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    crate::coalesce::form_turn(shared, job, &rx)
                }
                Err(_) => return, // engine dropped and queue drained
            }
        };
        // Process every unit of the turn even if one of them panics:
        // a panicked super-batch fails only its members, and jobs
        // already pulled off the queue must never be stranded. A
        // poisoned turn retires the thread afterwards (the pool drop
        // guards already discarded anything the unwind was leasing)
        // and the supervisor respawns a replacement.
        if crate::coalesce::run_turn(shared, id, turn) {
            shared.consecutive_panics[id].store(0, Ordering::Relaxed);
        } else {
            let _ = obituary_tx.send(id);
            return;
        }
    }
}
// verify: hot-path-end(worker-drain-loop)

/// Reaps dead workers and respawns them with capped exponential
/// backoff; on shutdown, joins every remaining worker.
fn supervisor_loop(
    shared: &Arc<Shared>,
    obituary_rx: &Receiver<usize>,
    obituary_tx: &Sender<usize>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    loop {
        match obituary_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(id) => {
                if let Some(handle) = handles[id].take() {
                    let _ = handle.join();
                }
                let deaths = shared.consecutive_panics[id].fetch_add(1, Ordering::Relaxed) + 1;
                let exponent = deaths.saturating_sub(1).min(16);
                let backoff = shared
                    .cfg
                    .backoff_base
                    .saturating_mul(1u32 << exponent)
                    .min(shared.cfg.backoff_max);
                // Shutdown-aware backoff: sleep in slices so engine
                // drop is never blocked behind a long delay.
                let until = Instant::now() + backoff;
                loop {
                    let left = until.saturating_duration_since(Instant::now());
                    if left.is_zero() || shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1).min(left));
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    continue; // keep reaping, but don't respawn
                }
                match spawn_worker(Arc::clone(shared), id, obituary_tx.clone()) {
                    Ok(handle) => {
                        shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
                        handles[id] = Some(handle);
                    }
                    Err(_) => {
                        // Host thread exhaustion at respawn time must
                        // not kill the supervisor. Re-enqueue the
                        // obituary: the worker comes back through this
                        // path with a grown consecutive-panic count,
                        // so retries back off toward backoff_max until
                        // the host recovers.
                        let _ = obituary_tx.send(id);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    for handle in handles.iter_mut().filter_map(Option::take) {
        let _ = handle.join();
    }
}

/// Serves one request on the calling worker thread.
pub(crate) fn process(
    shared: &Shared,
    seq: u64,
    request: &ScenarioRequest,
    deadline: Option<Instant>,
) -> Result<ScenarioResponse, ServeError> {
    match &request.query {
        Query::Evaluate(points) => {
            process_points(shared, seq, request.objectives, points, deadline)
        }
        Query::EvaluateGenomes { space, genomes } => {
            process_genomes(shared, seq, request.objectives, space, genomes, deadline)
        }
        Query::ParetoSweep { space } => {
            process_sweep(shared, seq, request.objectives, space, deadline)
        }
    }
}

/// Whether the request's budget has run out.
pub(crate) fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn process_points(
    shared: &Shared,
    seq: u64,
    objectives: Objectives,
    points: &[DesignPoint],
    deadline: Option<Instant>,
) -> Result<ScenarioResponse, ServeError> {
    let evaluator = shared.evaluator(objectives);
    let mut outcomes: Vec<Option<ObjectiveVector>> = Vec::with_capacity(points.len());
    let mut chunks_completed = 0usize;
    for (chunk_idx, chunk) in points.chunks(shared.cfg.chunk_points).enumerate() {
        if expired(deadline) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let points_resolved = outcomes.len() as u64;
            return Err(ServeError::DeadlineExceeded {
                partial: Box::new(ScenarioResponse {
                    result: QueryResult::Evaluations(outcomes),
                    stride: 1,
                    degraded: false,
                    chunks_completed,
                    points_resolved,
                    memo_hits: 0,
                }),
            });
        }
        chaos_hook(shared, seq, chunk_idx);
        outcomes.extend(evaluator.evaluate_batch(chunk));
        chunks_completed += 1;
    }
    let points_resolved = outcomes.len() as u64;
    Ok(ScenarioResponse {
        result: QueryResult::Evaluations(outcomes),
        stride: 1,
        degraded: false,
        chunks_completed,
        points_resolved,
        memo_hits: 0,
    })
}

fn process_genomes(
    shared: &Shared,
    seq: u64,
    objectives: Objectives,
    space: &DesignSpace,
    genomes: &[Genome],
    deadline: Option<Instant>,
) -> Result<ScenarioResponse, ServeError> {
    let evaluator = shared.evaluator(objectives);
    let memo = shared.memo(objectives);
    let mut outcomes: Vec<Option<ObjectiveVector>> = Vec::with_capacity(genomes.len());
    let mut chunks_completed = 0usize;
    let mut memo_hits = 0u64;
    let mut miss_slots: Vec<usize> = Vec::new();
    let mut miss_points: Vec<DesignPoint> = Vec::new();
    for (chunk_idx, chunk) in genomes.chunks(shared.cfg.chunk_points).enumerate() {
        if expired(deadline) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let points_resolved = outcomes.len() as u64;
            return Err(ServeError::DeadlineExceeded {
                partial: Box::new(ScenarioResponse {
                    result: QueryResult::Evaluations(outcomes),
                    stride: 1,
                    degraded: false,
                    chunks_completed,
                    points_resolved,
                    memo_hits,
                }),
            });
        }
        chaos_hook(shared, seq, chunk_idx);
        // Pass 1: answer what the cross-request memo already knows.
        let base = outcomes.len();
        miss_slots.clear();
        miss_points.clear();
        for (offset, genome) in chunk.iter().enumerate() {
            if let Some(cached) = memo.get(genome) {
                memo_hits += 1;
                outcomes.push(cached);
            } else {
                miss_slots.push(base + offset);
                miss_points.push(genome.decode(space));
                outcomes.push(None); // placeholder, overwritten below
            }
        }
        // Pass 2: evaluate the misses as one batch, in order, and
        // record them for future requests. Outcomes are pure, so a
        // concurrent recorder of the same genome agrees bitwise.
        let evaluated = evaluator.evaluate_batch(&miss_points);
        for (&slot, outcome) in miss_slots.iter().zip(&evaluated) {
            memo.record(chunk[slot - base].clone(), *outcome);
            outcomes[slot] = *outcome;
        }
        chunks_completed += 1;
    }
    let points_resolved = outcomes.len() as u64;
    Ok(ScenarioResponse {
        result: QueryResult::Evaluations(outcomes),
        stride: 1,
        degraded: false,
        chunks_completed,
        points_resolved,
        memo_hits,
    })
}

fn process_sweep(
    shared: &Shared,
    seq: u64,
    objectives: Objectives,
    space: &DesignSpace,
    deadline: Option<Instant>,
) -> Result<ScenarioResponse, ServeError> {
    let evaluator = shared.evaluator(objectives);
    // Load shedding: when this request waited behind a deep backlog,
    // coarsen the enumeration instead of collapsing. The stride is a
    // visible part of the response, never a silent approximation.
    let backlog = shared.queue_depth.load(Ordering::Acquire);
    let stride =
        if backlog >= shared.cfg.degrade_threshold { shared.cfg.degrade_stride.max(1) } else { 1 };
    if stride > 1 {
        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let total = space.cardinality();
    let mut front: ParetoArchive<DesignPoint> = ParetoArchive::new();
    let mut points: Vec<DesignPoint> = Vec::with_capacity(shared.cfg.chunk_points);
    let mut next: u128 = 0;
    let mut chunks_completed = 0usize;
    let mut points_resolved = 0u64;
    let mut chunk_idx = 0usize;
    while next < total {
        if expired(deadline) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExceeded {
                partial: Box::new(ScenarioResponse {
                    result: QueryResult::Front(front),
                    stride,
                    degraded: stride > 1,
                    chunks_completed,
                    points_resolved,
                    memo_hits: 0,
                }),
            });
        }
        chaos_hook(shared, seq, chunk_idx);
        points.clear();
        while next < total && points.len() < shared.cfg.chunk_points {
            points.push(space.point_at(next));
            next += stride as u128;
        }
        // Archive insertion in enumeration order: a stride-1 sweep is
        // bit-identical to `wbsn_dse::exhaustive::exhaustive`.
        for (point, outcome) in points.iter().zip(evaluator.evaluate_batch(&points)) {
            if let Some(objective_values) = outcome {
                front.insert(objective_values, point.clone());
            }
        }
        points_resolved += points.len() as u64;
        chunks_completed += 1;
        chunk_idx += 1;
    }
    Ok(ScenarioResponse {
        result: QueryResult::Front(front),
        stride,
        degraded: stride > 1,
        chunks_completed,
        points_resolved,
        memo_hits: 0,
    })
}
