//! Criterion bench for the compression substrate: one 256-sample block
//! through the DWT codec (node-side cost) and the CS codec including
//! FISTA reconstruction (coordinator-side cost) — the asymmetry that
//! motivates CS on ultra-low-power nodes (§4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wbsn_dsp::compress::{CsCodec, DwtCodec};
use wbsn_dsp::ecg::EcgGenerator;
use wbsn_dsp::wavelet::{wavedec, Wavelet};

fn bench_compression(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let block = EcgGenerator::default().generate(256, &mut rng);

    let dwt = DwtCodec::default();
    c.bench_function("dwt_codec_block_256", |b| b.iter(|| dwt.process(&block, 0.25)));

    let cs = CsCodec::default();
    c.bench_function("cs_codec_block_256_fista", |b| b.iter(|| cs.process(&block, 0.25, &mut rng)));

    c.bench_function("wavedec_db4_256x4", |b| b.iter(|| wavedec(&block, Wavelet::Db4, 4)));
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
