//! Criterion bench for the packet-level simulator: cost of simulating
//! ten seconds of the six-node case-study network (the denominator of
//! the §5.2 model-vs-simulation speedup).

use criterion::{criterion_group, criterion_main, Criterion};
use wbsn_model::evaluate::half_dwt_half_cs;
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::units::Hertz;
use wbsn_sim::engine::{AlertConfig, NetworkBuilder};

fn bench_simulator(c: &mut Criterion) {
    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    c.bench_function("simulate_10s_6_nodes", |b| {
        b.iter(|| {
            NetworkBuilder::new(mac, nodes.clone())
                .duration_s(10.0)
                .build()
                .expect("feasible")
                .run()
        });
    });

    c.bench_function("simulate_10s_6_nodes_with_cap_alerts", |b| {
        b.iter(|| {
            NetworkBuilder::new(mac, nodes.clone())
                .duration_s(10.0)
                .alerts(AlertConfig { mean_interval_s: 1.0, payload_bytes: 20 })
                .build()
                .expect("feasible")
                .run()
        });
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
