//! Criterion bench for the exploration layer: a short NSGA-II run
//! (population 50, five generations) over the model evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use wbsn_dse::evaluator::ModelEvaluator;
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_model::space::DesignSpace;

fn bench_dse(c: &mut Criterion) {
    let space = DesignSpace::case_study(6);
    let eval = ModelEvaluator::shimmer();
    c.bench_function("nsga2_pop50_5_generations", |b| {
        b.iter(|| {
            nsga2(
                &space,
                &eval,
                &Nsga2Config { population: 50, generations: 5, seed: 1, ..Nsga2Config::default() },
            )
        })
    });
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
