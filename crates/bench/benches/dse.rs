//! Criterion bench for the exploration layer: short NSGA-II runs with
//! the parallel batch evaluator vs the forced-serial baseline, plus the
//! chunked exhaustive enumeration of a reduced space.

use criterion::{criterion_group, criterion_main, Criterion};
use wbsn_dse::evaluator::{ModelEvaluator, SerialEvaluator};
use wbsn_dse::exhaustive::exhaustive;
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;

fn short_cfg() -> Nsga2Config {
    Nsga2Config { population: 50, generations: 5, seed: 1, ..Nsga2Config::default() }
}

fn bench_dse(c: &mut Criterion) {
    let space = DesignSpace::case_study(6);
    let eval = ModelEvaluator::shimmer();
    c.bench_function("nsga2_pop50_5_generations", |b| {
        b.iter(|| nsga2(&space, &eval, &short_cfg()));
    });
    // Same search forced through the serial one-point-at-a-time batch
    // default: the baseline quantifying what batching buys end-to-end.
    let serial = SerialEvaluator(ModelEvaluator::shimmer());
    c.bench_function("nsga2_pop50_5_generations_serial_eval", |b| {
        b.iter(|| nsga2(&space, &serial, &short_cfg()));
    });

    // Exhaustive enumeration of a reduced space through the linear-index
    // chunked decoder (~2.6k points).
    let mut tiny = DesignSpace::case_study(2);
    tiny.cr_values = vec![0.17, 0.25, 0.33];
    tiny.f_mcu_values = vec![Hertz::from_mhz(4.0), Hertz::from_mhz(8.0)];
    tiny.payload_values = vec![70, 114];
    tiny.order_pairs = vec![(5, 5), (6, 6)];
    let eval = ModelEvaluator::shimmer();
    c.bench_function("exhaustive_reduced_space", |b| {
        b.iter(|| exhaustive(&tiny, &eval, 1_000_000));
    });
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
