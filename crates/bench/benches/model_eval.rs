//! Criterion bench backing the §5.2 throughput claim: one full
//! model evaluation of a six-node network (the paper's authors report
//! ≈4800 evaluations/s; the Rust implementation is far faster).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wbsn_model::evaluate::{half_dwt_half_cs, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;

fn bench_model_eval(c: &mut Criterion) {
    let model = WbsnModel::shimmer();
    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    c.bench_function("model_evaluate_6_nodes", |b| {
        b.iter(|| model.evaluate(black_box(&mac), black_box(&nodes)))
    });

    // Mixed feasible/infeasible sweep over the design space (the DSE
    // workload shape).
    let space = DesignSpace::case_study(6);
    let mut k = 0usize;
    let points: Vec<_> = (0..64)
        .map(|i| {
            space.point_with(|dim| {
                k = k.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(i);
                k % dim
            })
        })
        .collect();
    let mut idx = 0usize;
    c.bench_function("model_evaluate_design_space_mix", |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            let p = &points[idx];
            black_box(model.evaluate(&p.mac, &p.nodes).ok())
        })
    });
}

criterion_group!(benches, bench_model_eval);
criterion_main!(benches);
