//! Criterion bench backing the §5.2 throughput claim: one full
//! model evaluation of a six-node network (the paper's authors report
//! ≈4800 evaluations/s; the Rust implementation is far faster).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wbsn_model::evaluate::{half_dwt_half_cs, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;

fn bench_model_eval(c: &mut Criterion) {
    let model = WbsnModel::shimmer();
    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    c.bench_function("model_evaluate_6_nodes", |b| {
        b.iter(|| model.evaluate(black_box(&mac), black_box(&nodes)));
    });

    // Mixed feasible/infeasible sweep over the design space (the DSE
    // workload shape).
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(64);
    let mut idx = 0usize;
    c.bench_function("model_evaluate_design_space_mix", |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            let p = &points[idx];
            black_box(model.evaluate(&p.mac, &p.nodes).ok())
        });
    });
}

/// Serial vs fast-path vs parallel-batch: the three evaluation paths of
/// the batch engine over an identical mixed feasible/infeasible sweep.
fn bench_evaluation_paths(c: &mut Criterion) {
    use wbsn_dse::evaluator::{Evaluator, ModelEvaluator};
    use wbsn_model::evaluate::EvalScratch;

    let model = WbsnModel::shimmer();
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(512);

    let mut idx = 0usize;
    c.bench_function("eval_path_serial_single_point", |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            let p = &points[idx];
            black_box(model.evaluate(&p.mac, &p.nodes).ok())
        });
    });

    let mut scratch = EvalScratch::new();
    let mut idx = 0usize;
    c.bench_function("eval_path_fast_single_point", |b| {
        b.iter(|| {
            idx = (idx + 1) % points.len();
            let p = &points[idx];
            black_box(model.evaluate_objectives(&p.mac, &p.nodes, &mut scratch).ok())
        });
    });

    let evaluator = ModelEvaluator::shimmer();
    c.bench_function("eval_path_batch_512_points", |b| {
        b.iter(|| black_box(evaluator.evaluate_batch(&points)));
    });
}

criterion_group!(benches, bench_model_eval, bench_evaluation_paths);
criterion_main!(benches);
