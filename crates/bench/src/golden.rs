//! Golden-snapshot helpers shared by the regression suites
//! (`tests/golden_figures.rs`, `tests/golden_truth.rs`).
//!
//! Snapshots live under `benchmarks/golden/` and are compared
//! **bitwise**: every number is rendered through Rust's
//! shortest-round-trip `Display`, so a model change, a kernel change,
//! an RNG change or a formatting change all fail loudly at the first
//! diverging line.
//!
//! To regenerate after an *intentional* change, run the owning test
//! with `GOLDEN_BLESS=1` and commit the rewritten files:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p wbsn-bench --test golden_truth
//! ```

use std::path::PathBuf;

/// Absolute path of a snapshot file under `benchmarks/golden/`.
#[must_use]
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks/golden")).join(name)
}

/// Compares `actual` against the committed snapshot (or rewrites the
/// snapshot under `GOLDEN_BLESS=1`).
///
/// # Panics
///
/// Panics when the snapshot is missing or differs from `actual`; the
/// failure message shows the first diverging line.
pub fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true")) {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create benchmarks/golden");
        std::fs::write(&path, actual).expect("write blessed golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n\
             (generate it with GOLDEN_BLESS=1 cargo test -p wbsn-bench)",
            path.display()
        )
    });
    if expected != actual {
        // Find the first diverging line for a readable failure.
        let mut diff = String::from("<tables have different line counts>");
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                diff = format!("first divergence at line {}:\n  golden: {e}\n  actual: {a}", i + 1);
                break;
            }
        }
        panic!(
            "{name} drifted from its golden snapshot ({} vs {} bytes)\n{diff}\n\
             If the change is intentional, re-bless with GOLDEN_BLESS=1.",
            expected.len(),
            actual.len()
        );
    }
}
