//! Golden-figure table generators.
//!
//! Each function builds the deterministic numeric report of one paper
//! figure as a `String`: the `fig3_energy` / `fig4_prd` / `fig5_pareto`
//! binaries print it, and `crates/bench/tests/golden_figures.rs`
//! compares it bitwise against the snapshot committed under
//! `benchmarks/golden/` — figure output can never silently drift.
//!
//! All model-side numbers flow through the full-evaluation batch kernel
//! ([`WbsnModel::evaluate_batch_full`]) or the batch evaluator, not the
//! scalar point-by-point `evaluate()` loop: the kernels are bit-identical
//! to the scalar path (property-tested in
//! `crates/wbsn/tests/full_eval_parity.rs`), so the figures double as an
//! end-to-end regression net over the batch engine.

use crate::{header_to, percent_error, row_to, ErrorSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use wbsn_dse::evaluator::{EnergyDelayEvaluator, Evaluator, ModelEvaluator};
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::quality::membership_in_front;
use wbsn_dsp::compress::{measure_prd, Codec, CsCodec, DwtCodec};
use wbsn_dsp::ecg::EcgGenerator;
use wbsn_model::evaluate::{NodeConfig, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::shimmer::CompressionKind;
use wbsn_model::soa::{FullEvalOut, SoaScratch};
use wbsn_model::space::{DesignPoint, DesignSpace, NodeVec};
use wbsn_model::units::Hertz;
use wbsn_model::ModelError;
use wbsn_sim::engine::NetworkBuilder;

/// Simulated seconds per Fig. 3 configuration.
const FIG3_SIM_SECONDS: f64 = 60.0;

/// The Fig. 3 sweep: `fµC ∈ {1, 8} MHz × CR ∈ {0.17, 0.23, 0.32, 0.38}`
/// for both applications, in row order.
fn fig3_configs() -> Vec<(CompressionKind, f64, f64)> {
    let mut configs = Vec::new();
    for kind in [CompressionKind::Dwt, CompressionKind::Cs] {
        for f_mhz in [1.0, 8.0] {
            for cr in [0.17, 0.23, 0.32, 0.38] {
                configs.push((kind, f_mhz, cr));
            }
        }
    }
    configs
}

/// Fig. 3 — per-node energy, analytical model (via the full-evaluation
/// batch kernel) vs the packet-level simulator, across the paper's
/// sixteen configurations.
///
/// # Panics
///
/// Panics when the simulator disagrees with the model's feasibility
/// verdict or a configuration raises an unexpected error — both would
/// invalidate the figure.
#[must_use]
pub fn fig3_table() -> String {
    let mac = Ieee802154Config::new(114, 6, 6).expect("case-study MAC config");
    let model = WbsnModel::shimmer();
    let configs = fig3_configs();

    // All sixteen model evaluations in one batch through the kernel.
    let points: Vec<DesignPoint> = configs
        .iter()
        .map(|&(kind, f_mhz, cr)| DesignPoint {
            mac,
            nodes: (0..6).map(|_| NodeConfig::new(kind, cr, Hertz::from_mhz(f_mhz))).collect(),
        })
        .collect();
    let mut scratch = SoaScratch::new();
    let mut out = FullEvalOut::new();
    model.evaluate_batch_full(&points, &mut scratch, &mut out);

    let mut buf = String::new();
    buf.push_str("# Fig. 3 — node energy consumption per second [mJ/s], model vs simulation\n\n");
    header_to(
        &mut buf,
        &[
            "app",
            "fµC",
            "CR",
            "model [mJ/s]",
            "sim [mJ/s]",
            "error %",
            "model sensor/mcu/mem/radio",
            "sim sensor/mcu/mem/radio",
        ],
    );

    let mut summaries =
        [(CompressionKind::Cs, ErrorSummary::new()), (CompressionKind::Dwt, ErrorSummary::new())];
    for (i, &(kind, f_mhz, cr)) in configs.iter().enumerate() {
        let nodes = vec![NodeConfig::new(kind, cr, Hertz::from_mhz(f_mhz)); 6];
        let measured = NetworkBuilder::new(mac, nodes)
            .duration_s(FIG3_SIM_SECONDS)
            .seed(2012)
            .build()
            .expect("GTS assignment feasible for these rates")
            .run();
        let sim_node = &measured.nodes[0];
        let lane = out.node_range(i).start;
        match &out.outcomes()[i] {
            Ok(_) => {
                let model_total = out.energy()[lane];
                let sim_total = sim_node.energy.total_mj_s();
                let err = percent_error(model_total, sim_total);
                for (k, s) in &mut summaries {
                    if *k == kind {
                        s.record(err);
                    }
                }
                row_to(
                    &mut buf,
                    &[
                        kind.label().to_string(),
                        format!("{f_mhz} MHz"),
                        format!("{cr:.2}"),
                        format!("{model_total:.3}"),
                        format!("{sim_total:.3}"),
                        format!("{err:.2}"),
                        format!(
                            "{:.2}/{:.2}/{:.2}/{:.2}",
                            out.sensor()[lane],
                            out.mcu()[lane],
                            out.memory()[lane],
                            out.radio()[lane]
                        ),
                        format!(
                            "{:.2}/{:.2}/{:.2}/{:.2}",
                            sim_node.energy.sensor_mj_s,
                            sim_node.energy.mcu_mj_s,
                            sim_node.energy.memory_mj_s,
                            sim_node.energy.radio_mj_s
                        ),
                    ],
                );
            }
            Err(ModelError::DutyCycleExceeded { duty, .. }) => {
                row_to(
                    &mut buf,
                    &[
                        kind.label().to_string(),
                        format!("{f_mhz} MHz"),
                        format!("{cr:.2}"),
                        format!("INFEASIBLE (duty {:.0} %)", duty * 100.0),
                        if sim_node.cpu_overrun { "CPU OVERRUN".into() } else { "?".into() },
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ],
                );
                assert!(
                    sim_node.cpu_overrun,
                    "simulator must confirm the model's infeasibility verdict"
                );
            }
            Err(e) => panic!("unexpected model error: {e}"),
        }
    }

    buf.push('\n');
    for (kind, summary) in &summaries {
        let _ = writeln!(
            buf,
            "{}: average error {:.2} % | max error {:.2} % over {} feasible configurations",
            kind.label(),
            summary.mean(),
            summary.max(),
            summary.count()
        );
    }
    buf.push_str(
        "\npaper: avg 0.88 % (CS) / 0.13 % (DWT), max <= 1.74 %; DWT infeasible at 1 MHz\n",
    );
    buf
}

/// Samples per second of the Fig. 4 synthetic ECG.
const FIG4_FS: usize = 250;
/// Block length the codecs compress.
const FIG4_BLOCK: usize = 256;
/// Seconds of signal (held-out seed: different recordings than the ones
/// `fit_prd` used).
const FIG4_SECONDS: usize = 64;
const FIG4_SIGNAL_SEED: u64 = 777;

/// The Fig. 4 compression-ratio sweep (0.17 to 0.38 in steps of 0.03,
/// with the binary's historical floating-point accumulation).
fn fig4_crs() -> Vec<f64> {
    let mut crs = Vec::new();
    let mut cr = 0.17;
    while cr <= 0.38 + 1e-9 {
        crs.push(cr);
        cr += 0.03;
    }
    crs
}

/// Fig. 4 — application quality (PRD): the model's estimate (via the
/// full-evaluation batch kernel, which evaluates the `P5(CR)`
/// polynomials inside the node model) vs the PRD measured by running the
/// real DWT and CS codecs on synthetic ECG and reconstructing.
///
/// # Panics
///
/// Panics when a sweep configuration is infeasible (all are, by
/// construction) or the measured PRD stops decreasing with CR.
#[must_use]
pub fn fig4_table() -> String {
    let mut rng = StdRng::seed_from_u64(FIG4_SIGNAL_SEED);
    let signal = EcgGenerator::default().generate(FIG4_FS * FIG4_SECONDS, &mut rng);
    let crs = fig4_crs();

    // Model-side estimates in one batch: one single-node point per
    // (application, CR) under the case-study MAC.
    let mac = Ieee802154Config::new(114, 6, 6).expect("case-study MAC config");
    let kinds = [CompressionKind::Dwt, CompressionKind::Cs];
    let points: Vec<DesignPoint> = kinds
        .iter()
        .flat_map(|&kind| {
            crs.iter().map(move |&cr| DesignPoint {
                mac,
                nodes: std::iter::once(NodeConfig::new(kind, cr, Hertz::from_mhz(8.0)))
                    .collect::<NodeVec>(),
            })
        })
        .collect();
    let model = WbsnModel::shimmer();
    let mut scratch = SoaScratch::new();
    let mut out = FullEvalOut::new();
    model.evaluate_batch_full(&points, &mut scratch, &mut out);

    let mut buf = String::new();
    buf.push_str("# Fig. 4 — PRD [%], polynomial model vs real codec measurement\n\n");
    header_to(
        &mut buf,
        &["app", "CR", "estimated PRD %", "measured PRD %", "abs error [PRD pts]", "rel error %"],
    );
    for (k, (kind, codec)) in kinds
        .iter()
        .zip([Codec::Dwt(DwtCodec::default()), Codec::Cs(CsCodec::default())])
        .enumerate()
    {
        let mut errors = ErrorSummary::new();
        let mut abs_errors = ErrorSummary::new();
        let mut last_measured = f64::INFINITY;
        for (c, &cr) in crs.iter().enumerate() {
            let point = k * crs.len() + c;
            let mut crng = StdRng::seed_from_u64(FIG4_SIGNAL_SEED ^ 0xBEEF);
            let report = measure_prd(&codec, &signal, FIG4_BLOCK, cr, &mut crng)
                .expect("block length divides signal");
            assert!(out.outcomes()[point].is_ok(), "fig4 sweep point must be feasible");
            let estimated = out.prd()[out.node_range(point).start];
            let abs = (estimated - report.prd).abs();
            let rel = abs / report.prd * 100.0;
            errors.record(rel);
            abs_errors.record(abs);
            row_to(
                &mut buf,
                &[
                    kind.label().to_string(),
                    format!("{cr:.2}"),
                    format!("{estimated:.2}"),
                    format!("{:.2}", report.prd),
                    format!("{abs:.2}"),
                    format!("{rel:.1}"),
                ],
            );
            assert!(
                report.prd < last_measured + 1.5,
                "PRD should decrease (roughly monotonically) with CR"
            );
            last_measured = report.prd;
        }
        let _ = writeln!(
            buf,
            "\n{}: mean abs error {:.2} PRD pts | mean rel error {:.1} % | max rel {:.1} %\n",
            kind.label(),
            abs_errors.mean(),
            errors.mean(),
            errors.max()
        );
    }
    buf.push_str("paper: error 0.46 % (DWT) / 0.92 % (CS) against the measured PRD\n");
    buf
}

/// The case-study space with a finer CR grid (step 0.005) and more
/// payload/order options, matching the paper's "tens of millions of
/// configurations" resolution more closely than the default grid.
#[must_use]
pub fn fig5_fine_space() -> DesignSpace {
    let mut space = DesignSpace::case_study(6);
    space.cr_values = (0..=42).map(|i| 0.17 + 0.005 * f64::from(i)).collect();
    space.payload_values = vec![30, 40, 50, 60, 70, 80, 90, 100, 114];
    space.order_pairs.clear();
    for sfo in 3u8..=9 {
        for bco in sfo..=10 {
            space.order_pairs.push((sfo, bco));
        }
    }
    space
}

/// Fig. 5 — energy/delay/PRD trade-off fronts of the proposed
/// three-objective model vs the energy/delay-only baseline ([26]), both
/// searched with NSGA-II over the batch evaluation engine; the
/// baseline's front is re-placed in 3-D objective space through the
/// batch evaluator.
///
/// # Panics
///
/// Panics on non-finite objective values (would invalidate the figure).
#[must_use]
pub fn fig5_table() -> String {
    let space = fig5_fine_space();
    let mut buf = String::new();
    buf.push_str(
        "# Fig. 5 — Pareto trade-offs, proposed 3-objective model vs energy/delay baseline\n\n",
    );
    let _ = writeln!(
        buf,
        "design space cardinality: {:.3e} configurations\n",
        space.cardinality() as f64
    );

    let cfg =
        Nsga2Config { population: 200, generations: 250, seed: 2012, ..Nsga2Config::default() };
    let proposed = nsga2(&space, &ModelEvaluator::shimmer(), &cfg);
    let baseline = nsga2(&space, &EnergyDelayEvaluator::shimmer(), &cfg);

    let _ = writeln!(
        buf,
        "proposed model  : {} Pareto points ({} evaluations, {} infeasible)",
        proposed.front.len(),
        proposed.evaluations,
        proposed.infeasible
    );
    let _ = writeln!(
        buf,
        "energy/delay [26]: {} Pareto points ({} evaluations, {} infeasible)\n",
        baseline.front.len(),
        baseline.evaluations,
        baseline.infeasible
    );

    // Re-evaluate the baseline's configurations under the full model —
    // in one batch — to place them in 3-D objective space.
    let model3 = ModelEvaluator::shimmer();
    let baseline_points: Vec<DesignPoint> =
        baseline.front.entries().iter().map(|e| e.payload.clone()).collect();
    let baseline_in_3d: Vec<ObjectiveVector> =
        model3.evaluate_batch(&baseline_points).into_iter().flatten().collect();
    let proposed_objs: Vec<ObjectiveVector> = proposed.front.objectives().copied().collect();

    let member = membership_in_front(&baseline_in_3d, &proposed_objs);
    let _ = writeln!(
        buf,
        "fraction of baseline solutions that survive as 3-objective trade-offs: {:.1} %",
        member * 100.0
    );
    let survivors = (member * baseline_in_3d.len() as f64).round();
    let _ = writeln!(
        buf,
        "trade-offs found by the baseline vs proposed: {} / {} = {:.1} %",
        survivors,
        proposed.front.len(),
        survivors / proposed.front.len() as f64 * 100.0
    );
    // Complementary view: how much of the proposed front does the
    // baseline actually cover?
    let covered = proposed_objs
        .iter()
        .filter(|p| baseline_in_3d.iter().any(|b| b.weakly_dominates(p)))
        .count();
    let _ = writeln!(
        buf,
        "proposed-front points covered by the baseline: {} / {} = {:.1} %\n",
        covered,
        proposed_objs.len(),
        covered as f64 / proposed_objs.len() as f64 * 100.0
    );
    buf.push_str(
        "paper: the energy/delay Pareto set contains only ~7 % of the proposed model's trade-offs\n\n",
    );

    // The three 2-D projections of Fig. 5 (proposed model's front).
    for (title, ix, iy) in [
        ("Energy-Delay Tradeoffs [mJ/s vs s]", 0usize, 1usize),
        ("Energy-PRD Tradeoffs [mJ/s vs %]", 0, 2),
        ("PRD-Delay Tradeoffs [% vs s]", 2, 1),
    ] {
        let _ = writeln!(buf, "## {title}\n");
        header_to(&mut buf, &["source", "x", "y"]);
        let mut rows: Vec<(f64, f64, &str)> = proposed_objs
            .iter()
            .map(|o| (o.values()[ix], o.values()[iy], "proposed"))
            .chain(baseline_in_3d.iter().map(|o| (o.values()[ix], o.values()[iy], "baseline")))
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        // Print a readable subsample (every k-th point).
        let step = (rows.len() / 40).max(1);
        for (x, y, src) in rows.iter().step_by(step) {
            row_to(&mut buf, &[(*src).to_string(), format!("{x:.3}"), format!("{y:.3}")]);
        }
        buf.push('\n');
    }
    buf
}
