//! Cross-PR bench regression gate.
//!
//! Compares the `batch_evals_per_s` of a fresh `dse_throughput` run
//! (`./BENCH_dse.json`) against the committed baseline snapshot
//! (`benchmarks/BENCH_dse.json`) and exits non-zero when the fresh
//! number regresses by more than the tolerance — the check the ROADMAP
//! asks CI to run after the throughput smoke run.
//!
//! Usage: `bench_gate [fresh.json [baseline.json]]`
//!
//! Environment:
//! * `BENCH_GATE_TOLERANCE` — allowed fractional regression (default
//!   `0.20`, i.e. fail below 80 % of baseline; CI noise tolerance).
//! * `BENCH_GATE_SKIP` — set to `1`/`true` to report and exit 0
//!   regardless (escape hatch for known-slow runners).

use std::process::ExitCode;

/// Extracts the number following `"key":` from a flat JSON document.
/// (The bench JSON is machine-written with simple scalar fields; a full
/// JSON parser would be the only reason to grow a dependency here.)
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_dse.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "benchmarks/BENCH_dse.json".into());

    let skip =
        std::env::var("BENCH_GATE_SKIP").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
    let tolerance: f64 = match std::env::var("BENCH_GATE_TOLERANCE") {
        Err(_) => 0.20,
        // A fraction in [0, 1): 1.0+ would make the floor non-positive and
        // silently wave every regression through (`20` for "20%" is the
        // likely misconfiguration — the gate prints percentages).
        Ok(v) => match v.parse() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "bench_gate: BENCH_GATE_TOLERANCE must be a fraction in [0, 1) \
                     (e.g. 0.20 for 20%), got `{v}`"
                );
                return ExitCode::FAILURE;
            }
        },
    };

    let read = |path: &str| -> Option<f64> {
        let doc = match std::fs::read_to_string(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_gate: cannot read {path}: {e}");
                return None;
            }
        };
        let v = json_number(&doc, "batch_evals_per_s");
        if v.is_none() {
            eprintln!("bench_gate: no `batch_evals_per_s` in {path}");
        }
        v
    };
    let (Some(fresh), Some(baseline)) = (read(&fresh_path), read(&baseline_path)) else {
        return ExitCode::FAILURE;
    };

    let floor = baseline * (1.0 - tolerance);
    let ratio = fresh / baseline;
    println!(
        "bench_gate: batch_evals_per_s fresh {fresh:.0} vs baseline {baseline:.0} \
         ({:+.1}%, floor {floor:.0} at tolerance {tolerance:.0}%)",
        (ratio - 1.0) * 100.0,
        tolerance = tolerance * 100.0
    );
    if skip {
        println!("bench_gate: BENCH_GATE_SKIP set — result ignored");
        return ExitCode::SUCCESS;
    }
    if fresh < floor {
        eprintln!(
            "bench_gate: FAIL — batch throughput regressed more than {:.0}% \
             (override with BENCH_GATE_SKIP=1 or BENCH_GATE_TOLERANCE)",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: PASS");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::json_number;

    #[test]
    fn extracts_scalars() {
        let doc = r#"{ "a": 1.5, "batch_evals_per_s": 9155422.3, "b": {"c": 2} }"#;
        assert_eq!(json_number(doc, "batch_evals_per_s"), Some(9_155_422.3));
        assert_eq!(json_number(doc, "a"), Some(1.5));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn handles_exponents_and_negatives() {
        let doc = r#"{"x": -2.5e3,"y": 1e-2}"#;
        assert_eq!(json_number(doc, "x"), Some(-2500.0));
        assert_eq!(json_number(doc, "y"), Some(0.01));
    }
}
