//! Cross-PR bench regression gate.
//!
//! Compares the gated fields of a fresh bench run (`./BENCH_dse.json`,
//! written by `dse_throughput` then merged by `serve_throughput`)
//! against the committed baseline snapshot (`benchmarks/BENCH_dse.json`)
//! and exits non-zero when any field regresses past its tolerance —
//! the check the ROADMAP asks CI to run after the throughput smoke run.
//!
//! Gated fields (higher-is-better rates unless noted):
//! * `batch_evals_per_s` — the multi-core batch engine;
//! * `batch_evals_per_s_16node` — the batch engine on the 16-node
//!   large-deployment sweep (the grouped-kernel crossover workload);
//! * `fastpath_evals_per_s` — the scalar allocation-free fast path;
//! * `soa_evals_per_s` — the struct-of-arrays kernel, one core;
//! * `soa_grouped_evals_per_s` — the MAC-grouped `SoA` kernel, one core;
//! * `full_evals_per_s` — the full-evaluation (per-node lanes) kernel,
//!   one core;
//! * `decode_eval_points_per_s` — linear-index decode + scalar
//!   fast-path evaluation per point;
//! * `sweep_incremental_points_per_s` — the axis-major incremental
//!   full-space sweep (the ground-truth harness's enumeration path);
//! * `serve_queries_per_s` — the serve engine's best sustained
//!   scenario-query rate;
//! * `serve_p50_ms` / `serve_p99_ms` — single-client serve latency
//!   percentiles (**lower is better**: the gate fails when they rise);
//! * `serve_small_qps_16pt` — 16-point small-query rate at concurrency
//!   16 with cross-request coalescing on;
//! * `serve_small_p99_ms_16pt` — its p99 latency (**lower is better**);
//! * `serve_small_coalesce_ratio_16pt` — coalescing-on over
//!   coalescing-off rate at that level (**absolute floor** 1.3: the
//!   coalescer must keep earning its keep, not merely exist);
//! * `hypervolume_ratio_nsga2` / `front_coverage_nsga2` — NSGA-II
//!   search quality against the exact paper-2node Pareto front
//!   (**absolute floors**, not tolerance bands: the values are fully
//!   deterministic — seeded searcher, seeded Monte-Carlo estimator —
//!   so any drop below the `wbsn_dse::truth` thresholds is a real
//!   search-quality regression, never measurement noise, and is
//!   excluded from the noise-retry machinery).
//!
//! Same-machine quiet-run noise is a few percent per field, but
//! co-tenant load on shared runners can depress a single run by
//! 10–15 %; the default 20 % tolerance keeps margin over both while
//! still catching real regressions. Because a single noisy run can
//! still land just past the floor, a FAIL that lies within the *retry
//! band* past its tolerance is re-measured once (when a re-measure
//! command is configured) before the gate judges it: transient noise
//! passes the second run, a real regression fails twice. A field
//! missing from the *baseline* is reported and skipped (snapshots
//! predating the field); a field missing from the *fresh* run fails.
//!
//! Usage: `bench_gate [fresh.json [baseline.json]]`
//!
//! Environment:
//! * `BENCH_GATE_TOLERANCE` — allowed fractional regression (default
//!   `0.20`, i.e. fail below 80 % of baseline; CI noise tolerance).
//! * `BENCH_GATE_TOLERANCE_<FIELD>` — per-field override, `<FIELD>`
//!   being the field name upper-cased (e.g.
//!   `BENCH_GATE_TOLERANCE_BATCH_EVALS_PER_S_16NODE=0.30` for a field
//!   known to swing harder than the rest).
//! * `BENCH_GATE_RETRY_BAND` — width of the borderline band past the
//!   tolerance, as a fraction (default `0.15`): a FAIL regressed by no
//!   more than `tolerance + band` qualifies for one re-measurement.
//! * `BENCH_GATE_REMEASURE_CMD` — shell command that regenerates the
//!   fresh document (e.g. the `dse_throughput` run); executed at most
//!   once, only when every failure is borderline. Unset: no retry.
//! * `BENCH_GATE_SKIP` — set to `1`/`true` to report and exit 0
//!   regardless (escape hatch for known-slow runners).

use std::process::ExitCode;
use wbsn_bench::fidelity::{
    gate_field, MIN_DELAY_HEADROOM, MIN_ENERGY_AGREEMENT_PCT, MIN_PRD_MARGIN,
};
use wbsn_dse::scenario::fidelity_families;
use wbsn_dse::truth::{NSGA2_MIN_FRONT_COVERAGE, NSGA2_MIN_HYPERVOLUME_RATIO};

/// Multi-core scaling floor: on a runner that actually has cores
/// (`threads` > 1 in the fresh run), the batch path's best multi-thread
/// parallel efficiency — `thread_sweep_best_efficiency`, written by a
/// `THREAD_SWEEP=1` run of `dse_throughput` — must stay above this
/// fraction of linear scaling.
const MIN_MULTICORE_EFFICIENCY: f64 = 0.5;

/// The coalescer's acceptance floor: 16-point queries at concurrency 16
/// must sustain at least this rate ratio with coalescing on vs off.
const MIN_SMALL_COALESCE_RATIO: f64 = 1.3;

/// How a gated field is judged.
#[derive(Clone, Copy)]
enum Gate {
    /// Throughput-style rate: fails when the fresh value falls more
    /// than the tolerance below baseline.
    HigherIsBetter,
    /// Latency-style: fails when the fresh value rises more than the
    /// tolerance above baseline.
    LowerIsBetter,
    /// Deterministic quality statistic: fails whenever the fresh value
    /// sits below the absolute floor. No tolerance, no retry band —
    /// the number cannot be noisy, so a miss is always a regression.
    Floor(f64),
}

/// The gated fields of `BENCH_dse.json` and how each is judged. The
/// quality floors are the same constants the tier-1 `search_quality`
/// and `model_vs_sim` harnesses assert, so the gate and the tests can
/// never disagree. Every `fidelity_*` field (three metrics × every
/// scenario family, written by `fidelity_sweep`) is an absolute
/// [`Gate::Floor`] — the fidelity measurements are fully deterministic,
/// so they are never tolerance-banded or retried as noise.
fn gated_fields() -> Vec<(String, Gate)> {
    let mut fields: Vec<(String, Gate)> = [
        ("batch_evals_per_s", Gate::HigherIsBetter),
        ("batch_evals_per_s_16node", Gate::HigherIsBetter),
        ("fastpath_evals_per_s", Gate::HigherIsBetter),
        ("soa_evals_per_s", Gate::HigherIsBetter),
        ("soa_grouped_evals_per_s", Gate::HigherIsBetter),
        ("full_evals_per_s", Gate::HigherIsBetter),
        ("decode_eval_points_per_s", Gate::HigherIsBetter),
        ("sweep_incremental_points_per_s", Gate::HigherIsBetter),
        ("serve_queries_per_s", Gate::HigherIsBetter),
        ("serve_p50_ms", Gate::LowerIsBetter),
        ("serve_p99_ms", Gate::LowerIsBetter),
        ("serve_small_qps_16pt", Gate::HigherIsBetter),
        ("serve_small_p99_ms_16pt", Gate::LowerIsBetter),
        ("serve_small_coalesce_ratio_16pt", Gate::Floor(MIN_SMALL_COALESCE_RATIO)),
        ("hypervolume_ratio_nsga2", Gate::Floor(NSGA2_MIN_HYPERVOLUME_RATIO)),
        ("front_coverage_nsga2", Gate::Floor(NSGA2_MIN_FRONT_COVERAGE)),
    ]
    .into_iter()
    .map(|(name, gate)| (name.to_string(), gate))
    .collect();
    for family in fidelity_families() {
        for (metric, floor) in [
            ("energy", MIN_ENERGY_AGREEMENT_PCT),
            ("delay", MIN_DELAY_HEADROOM),
            ("prd", MIN_PRD_MARGIN),
        ] {
            fields.push((gate_field(family.name, metric), Gate::Floor(floor)));
        }
    }
    fields
}

/// Extracts the number following `"key":` from a flat JSON document.
/// (The bench JSON is machine-written with simple scalar fields; a full
/// JSON parser would be the only reason to grow a dependency here.)
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// How far a fresh value regressed from baseline, as a fraction of the
/// baseline, in the field's "worse" direction: positive = worse.
/// Higher-is-better fields regress by falling, lower-is-better fields
/// (latencies) by rising; improvements come back negative either way.
fn regression(fresh: f64, baseline: f64, lower_is_better: bool) -> f64 {
    if lower_is_better {
        fresh / baseline - 1.0
    } else {
        1.0 - fresh / baseline
    }
}

/// Parses a `[0, 1)` fraction env var, distinguishing unset (`Ok(None)`)
/// from invalid (`Err` with the offending value).
fn fraction_env(name: &str) -> Result<Option<f64>, String> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(v) => match v.parse() {
            Ok(t) if (0.0..1.0).contains(&t) => Ok(Some(t)),
            _ => Err(v),
        },
    }
}

/// One comparison pass over every gated field. Returns the number of
/// hard failures, whether every failure sits inside the retry band,
/// and the per-field delta strings for the PASS summary line.
fn judge(
    fields: &[(String, Gate)],
    fresh_doc: &str,
    baseline_doc: &str,
    fresh_path: &str,
    baseline_path: &str,
    default_tolerance: f64,
    retry_band: f64,
) -> Result<(usize, bool, Vec<String>), ExitCode> {
    let mut failures = 0usize;
    let mut all_borderline = true;
    let mut deltas: Vec<String> = Vec::new();
    for (field, gate) in fields {
        let gate = *gate;
        let Some(fresh) = json_number(fresh_doc, field) else {
            eprintln!("bench_gate: no `{field}` in {fresh_path}");
            failures += 1;
            all_borderline = false; // a missing field is never noise
            continue;
        };
        // Absolute floors judge the fresh value alone: deterministic
        // statistics have no baseline to drift from and no noise to
        // retry through.
        if let Gate::Floor(floor) = gate {
            let fail = fresh < floor;
            let verdict = if fail { "FAIL" } else { "ok" };
            println!("bench_gate: {field} fresh {fresh:.4} vs absolute floor {floor:.4} {verdict}");
            deltas.push(format!("{field} {fresh:.4} (floor {floor:.4})"));
            if fail {
                failures += 1;
                all_borderline = false;
            }
            continue;
        }
        let lower_is_better = matches!(gate, Gate::LowerIsBetter);
        let tolerance =
            match fraction_env(&format!("BENCH_GATE_TOLERANCE_{}", field.to_ascii_uppercase())) {
                Ok(per_field) => per_field.unwrap_or(default_tolerance),
                Err(v) => {
                    eprintln!(
                    "bench_gate: BENCH_GATE_TOLERANCE_{} must be a fraction in [0, 1), got `{v}`",
                    field.to_ascii_uppercase()
                );
                    return Err(ExitCode::FAILURE);
                }
            };
        let Some(baseline) = json_number(baseline_doc, field) else {
            // Old snapshot without this field: nothing to compare yet.
            println!("bench_gate: `{field}` absent from baseline {baseline_path} — skipped");
            continue;
        };
        let regressed = regression(fresh, baseline, lower_is_better);
        let fail = regressed > tolerance;
        let direction = if lower_is_better { "<=" } else { ">=" };
        let bound = if lower_is_better {
            baseline * (1.0 + tolerance)
        } else {
            baseline * (1.0 - tolerance)
        };
        let verdict = if fail { "FAIL" } else { "ok" };
        println!(
            "bench_gate: {field} fresh {fresh:.4} vs baseline {baseline:.4} \
             ({:+.1}% worse, need {direction} {bound:.4} at tolerance {:.0}%) {verdict}",
            regressed * 100.0,
            tolerance * 100.0
        );
        deltas.push(format!("{field} {:+.1}%", -regressed * 100.0));
        if fail {
            failures += 1;
            if regressed > tolerance + retry_band {
                all_borderline = false;
            }
        }
    }
    Ok((failures, all_borderline, deltas))
}

/// The self-arming multi-core scaling gate. A fresh run that used more
/// than one thread and carries `thread_sweep_best_efficiency` (written
/// by a `THREAD_SWEEP=1` run of `dse_throughput`) is held to
/// [`MIN_MULTICORE_EFFICIENCY`]; a 1-thread run keeps the gate
/// disarmed, and a multi-thread run without sweep data gets a notice.
/// The old CI step only *noticed* multi-core runners — now the sweep
/// data arms enforcement by itself. Returns the number of failures.
fn scaling_gate(fresh_doc: &str) -> usize {
    let threads = json_number(fresh_doc, "threads").unwrap_or(1.0);
    if threads <= 1.0 {
        println!("bench_gate: 1-thread run — multi-core scaling gate disarmed");
        return 0;
    }
    match json_number(fresh_doc, "thread_sweep_best_efficiency") {
        Some(eff) if eff >= MIN_MULTICORE_EFFICIENCY => {
            println!(
                "bench_gate: thread_sweep_best_efficiency {eff:.3} vs floor \
                 {MIN_MULTICORE_EFFICIENCY:.2} ({threads:.0} threads) ok"
            );
            0
        }
        Some(eff) => {
            eprintln!(
                "bench_gate: FAIL — thread_sweep_best_efficiency {eff:.3} is below the \
                 {MIN_MULTICORE_EFFICIENCY:.2} floor on a {threads:.0}-thread runner"
            );
            1
        }
        None => {
            println!(
                "bench_gate: notice — {threads:.0} threads but no \
                 `thread_sweep_best_efficiency`; run dse_throughput with THREAD_SWEEP=1 \
                 to arm the scaling gate"
            );
            0
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_dse.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "benchmarks/BENCH_dse.json".into());

    let skip =
        std::env::var("BENCH_GATE_SKIP").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
    // A fraction in [0, 1): 1.0+ would make the floor non-positive and
    // silently wave every regression through (`20` for "20%" is the
    // likely misconfiguration — the gate prints percentages).
    let tolerance = match fraction_env("BENCH_GATE_TOLERANCE") {
        Ok(t) => t.unwrap_or(0.20),
        Err(v) => {
            eprintln!(
                "bench_gate: BENCH_GATE_TOLERANCE must be a fraction in [0, 1) \
                 (e.g. 0.20 for 20%), got `{v}`"
            );
            return ExitCode::FAILURE;
        }
    };
    let retry_band = match fraction_env("BENCH_GATE_RETRY_BAND") {
        Ok(b) => b.unwrap_or(0.15),
        Err(v) => {
            eprintln!("bench_gate: BENCH_GATE_RETRY_BAND must be a fraction in [0, 1), got `{v}`");
            return ExitCode::FAILURE;
        }
    };

    let read_doc = |path: &str| match std::fs::read_to_string(path) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(mut fresh_doc), Some(baseline_doc)) =
        (read_doc(&fresh_path), read_doc(&baseline_path))
    else {
        return ExitCode::FAILURE;
    };

    let fields = gated_fields();
    let (mut failures, mut all_borderline, mut deltas) = match judge(
        &fields,
        &fresh_doc,
        &baseline_doc,
        &fresh_path,
        &baseline_path,
        tolerance,
        retry_band,
    ) {
        Ok(result) => result,
        Err(code) => return code,
    };

    // Borderline FAILs are indistinguishable from a single noisy run;
    // when a re-measure command is configured, spend one repeat before
    // judging. Failures past the band skip the retry: 35 %+ drops are
    // not weather.
    if failures > 0 && all_borderline {
        if let Ok(cmd) = std::env::var("BENCH_GATE_REMEASURE_CMD") {
            println!(
                "bench_gate: {failures} borderline failure(s) within the {:.0}% retry band — \
                 re-measuring once: {cmd}",
                retry_band * 100.0
            );
            let status = std::process::Command::new("sh").arg("-c").arg(&cmd).status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("bench_gate: re-measure command exited with {s}");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("bench_gate: could not run the re-measure command: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let Some(doc) = read_doc(&fresh_path) else {
                return ExitCode::FAILURE;
            };
            fresh_doc = doc;
            (failures, all_borderline, deltas) = match judge(
                &fields,
                &fresh_doc,
                &baseline_doc,
                &fresh_path,
                &baseline_path,
                tolerance,
                retry_band,
            ) {
                Ok(result) => result,
                Err(code) => return code,
            };
            let _ = all_borderline; // one retry only, however the rerun lands
        }
    }

    failures += scaling_gate(&fresh_doc);

    if skip {
        println!("bench_gate: BENCH_GATE_SKIP set — result ignored");
        return ExitCode::SUCCESS;
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: FAIL — {failures} field(s) regressed past tolerance \
             (override with BENCH_GATE_SKIP=1, BENCH_GATE_TOLERANCE, or per-field \
             BENCH_GATE_TOLERANCE_<FIELD>)"
        );
        return ExitCode::FAILURE;
    }
    // One compact per-field delta line on success, for drift forensics
    // straight from the CI log (machine-day drift vs real regressions).
    println!("bench_gate: PASS ({})", deltas.join(", "));
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{
        gated_fields, json_number, judge, regression, scaling_gate, Gate,
        NSGA2_MIN_HYPERVOLUME_RATIO,
    };

    /// Builds a complete bench document with every gated field healthy,
    /// except `hypervolume_ratio_nsga2` pinned to `hv`.
    fn doc_with_hv(hv: f64) -> String {
        use std::fmt::Write as _;
        let mut doc = String::from("{\n");
        for (field, gate) in gated_fields() {
            let v = match gate {
                Gate::Floor(_) if field == "hypervolume_ratio_nsga2" => hv,
                Gate::Floor(floor) => floor,
                Gate::LowerIsBetter => 1.0,
                Gate::HigherIsBetter => 100.0,
            };
            let _ = writeln!(doc, "  \"{field}\": {v},");
        }
        doc.push('}');
        doc
    }

    /// Floor gates judge the fresh value against the absolute
    /// threshold — a value *at* the floor passes, any value below it
    /// fails, and the failure is never classed as retry-band noise
    /// (the statistics are deterministic).
    #[test]
    fn floor_gates_bind_absolutely() {
        let fields = gated_fields();
        let good = doc_with_hv(NSGA2_MIN_HYPERVOLUME_RATIO);
        let (failures, _, _) =
            judge(&fields, &good, &good, "fresh", "baseline", 0.20, 0.15).expect("judgeable");
        assert_eq!(failures, 0, "values at their floors must pass");

        let bad = doc_with_hv(NSGA2_MIN_HYPERVOLUME_RATIO - 0.01);
        let (failures, all_borderline, _) =
            judge(&fields, &bad, &good, "fresh", "baseline", 0.20, 0.15).expect("judgeable");
        assert_eq!(failures, 1, "a below-floor quality value must fail");
        assert!(!all_borderline, "a floor miss is a real regression, not noise to retry");
    }

    /// Every scenario family contributes its three fidelity floors to
    /// the gate, and they are always [`Gate::Floor`] — never a
    /// tolerance-banded comparison (the measurements are deterministic).
    #[test]
    fn every_fidelity_family_is_floor_gated() {
        let fields = gated_fields();
        for family in wbsn_dse::scenario::fidelity_families() {
            for metric in ["energy", "delay", "prd"] {
                let name = super::gate_field(family.name, metric);
                let gate = fields
                    .iter()
                    .find(|(f, _)| *f == name)
                    .unwrap_or_else(|| panic!("gate is missing `{name}`"));
                assert!(matches!(gate.1, Gate::Floor(_)), "`{name}` must be an absolute floor");
            }
        }
        assert!(fields.len() >= 16 + 18, "the gated field set shrank");
    }

    #[test]
    fn extracts_scalars() {
        let doc = r#"{ "a": 1.5, "batch_evals_per_s": 9155422.3, "b": {"c": 2} }"#;
        assert_eq!(json_number(doc, "batch_evals_per_s"), Some(9_155_422.3));
        assert_eq!(json_number(doc, "a"), Some(1.5));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn handles_exponents_and_negatives() {
        let doc = r#"{"x": -2.5e3,"y": 1e-2}"#;
        assert_eq!(json_number(doc, "x"), Some(-2500.0));
        assert_eq!(json_number(doc, "y"), Some(0.01));
    }

    /// Regression is signed toward "worse" in each field's direction:
    /// a throughput drop and a latency rise are both positive, and
    /// improvements are negative either way.
    #[test]
    fn regression_respects_the_field_direction() {
        // Higher is better: an 80-vs-100 run regressed 20 %.
        assert!((regression(80.0, 100.0, false) - 0.20).abs() < 1e-12);
        assert!(regression(110.0, 100.0, false) < 0.0);
        // Lower is better: a 1.2/1.0 ms latency regressed 20 %.
        assert!((regression(1.2, 1.0, true) - 0.20).abs() < 1e-12);
        assert!(regression(0.8, 1.0, true) < 0.0);
    }

    /// A 20 % tolerance must pass a flat run and fail a 25 % regression
    /// in both directions.
    #[test]
    fn tolerance_cuts_both_directions_at_the_same_fraction() {
        for (fresh, baseline, lower) in [(75.0_f64, 100.0_f64, false), (1.25_f64, 1.0_f64, true)] {
            assert!(regression(fresh, baseline, lower) > 0.20, "25% worse must fail at 20%");
            assert!(regression(baseline, baseline, lower) <= 0.20, "flat runs pass");
        }
    }

    /// The scaling gate arms itself: disarmed on 1-thread runs, notice
    /// only when a multi-thread run lacks sweep data, and enforcing the
    /// efficiency floor as soon as the data is present.
    #[test]
    fn scaling_gate_arms_only_on_multithread_runs_with_sweep_data() {
        assert_eq!(scaling_gate(r#"{"threads": 1}"#), 0, "1-thread runs stay disarmed");
        assert_eq!(
            scaling_gate(r#"{"threads": 1, "thread_sweep_best_efficiency": 0.1}"#),
            0,
            "even a poor efficiency figure is moot without the cores"
        );
        assert_eq!(
            scaling_gate(r#"{"threads": 4}"#),
            0,
            "missing sweep data on a multi-core runner is a notice, not a failure"
        );
        assert_eq!(
            scaling_gate(r#"{"threads": 4, "thread_sweep_best_efficiency": 0.72}"#),
            0,
            "efficiency above the floor passes"
        );
        assert_eq!(
            scaling_gate(r#"{"threads": 4, "thread_sweep_best_efficiency": 0.31}"#),
            1,
            "sub-floor efficiency on a real multi-core runner must fail"
        );
    }

    /// The committed baseline must carry every gated field — including
    /// the serve-layer fields — or the gate silently shrinks to a
    /// subset.
    #[test]
    fn committed_baseline_has_every_gated_field() {
        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../benchmarks/BENCH_dse.json"
        ))
        .expect("committed baseline exists");
        for (field, _) in gated_fields() {
            assert!(
                json_number(&doc, &field).is_some(),
                "baseline snapshot is missing gated field `{field}`"
            );
        }
    }
}
