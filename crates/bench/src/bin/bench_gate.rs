//! Cross-PR bench regression gate.
//!
//! Compares the throughput fields of a fresh `dse_throughput` run
//! (`./BENCH_dse.json`) against the committed baseline snapshot
//! (`benchmarks/BENCH_dse.json`) and exits non-zero when any gated
//! field regresses by more than the tolerance — the check the ROADMAP
//! asks CI to run after the throughput smoke run.
//!
//! Gated fields (all higher-is-better rates):
//! * `batch_evals_per_s` — the multi-core batch engine;
//! * `batch_evals_per_s_16node` — the batch engine on the 16-node
//!   large-deployment sweep (the grouped-kernel crossover workload);
//! * `fastpath_evals_per_s` — the scalar allocation-free fast path;
//! * `soa_evals_per_s` — the struct-of-arrays kernel, one core;
//! * `soa_grouped_evals_per_s` — the MAC-grouped SoA kernel, one core;
//! * `full_evals_per_s` — the full-evaluation (per-node lanes) kernel,
//!   one core;
//! * `decode_eval_points_per_s` — linear-index decode + scalar
//!   fast-path evaluation per point.
//!
//! Same-machine quiet-run noise is a few percent per field, but
//! co-tenant load on shared runners can depress a single run by 10 %+;
//! the default 20 % tolerance keeps margin over both while still
//! catching real regressions (rerun before judging a borderline FAIL).
//! A field missing from the *baseline* is reported and skipped
//! (snapshots predating the field); a field missing from the *fresh*
//! run fails.
//!
//! Usage: `bench_gate [fresh.json [baseline.json]]`
//!
//! Environment:
//! * `BENCH_GATE_TOLERANCE` — allowed fractional regression (default
//!   `0.20`, i.e. fail below 80 % of baseline; CI noise tolerance).
//! * `BENCH_GATE_SKIP` — set to `1`/`true` to report and exit 0
//!   regardless (escape hatch for known-slow runners).

use std::process::ExitCode;

/// The gated fields of `BENCH_dse.json`.
const GATED_FIELDS: [&str; 7] = [
    "batch_evals_per_s",
    "batch_evals_per_s_16node",
    "fastpath_evals_per_s",
    "soa_evals_per_s",
    "soa_grouped_evals_per_s",
    "full_evals_per_s",
    "decode_eval_points_per_s",
];

/// Extracts the number following `"key":` from a flat JSON document.
/// (The bench JSON is machine-written with simple scalar fields; a full
/// JSON parser would be the only reason to grow a dependency here.)
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_dse.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "benchmarks/BENCH_dse.json".into());

    let skip =
        std::env::var("BENCH_GATE_SKIP").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"));
    let tolerance: f64 = match std::env::var("BENCH_GATE_TOLERANCE") {
        Err(_) => 0.20,
        // A fraction in [0, 1): 1.0+ would make the floor non-positive and
        // silently wave every regression through (`20` for "20%" is the
        // likely misconfiguration — the gate prints percentages).
        Ok(v) => match v.parse() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!(
                    "bench_gate: BENCH_GATE_TOLERANCE must be a fraction in [0, 1) \
                     (e.g. 0.20 for 20%), got `{v}`"
                );
                return ExitCode::FAILURE;
            }
        },
    };

    let read_doc = |path: &str| match std::fs::read_to_string(path) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(fresh_doc), Some(baseline_doc)) = (read_doc(&fresh_path), read_doc(&baseline_path))
    else {
        return ExitCode::FAILURE;
    };

    let mut failures = 0usize;
    let mut deltas: Vec<String> = Vec::new();
    for field in GATED_FIELDS {
        let Some(fresh) = json_number(&fresh_doc, field) else {
            eprintln!("bench_gate: no `{field}` in {fresh_path}");
            failures += 1;
            continue;
        };
        let Some(baseline) = json_number(&baseline_doc, field) else {
            // Old snapshot without this field: nothing to compare yet.
            println!("bench_gate: `{field}` absent from baseline {baseline_path} — skipped");
            continue;
        };
        let floor = baseline * (1.0 - tolerance);
        let ratio = fresh / baseline;
        let verdict = if fresh < floor { "FAIL" } else { "ok" };
        println!(
            "bench_gate: {field} fresh {fresh:.0} vs baseline {baseline:.0} \
             ({:+.1}%, floor {floor:.0} at tolerance {tolerance:.0}%) {verdict}",
            (ratio - 1.0) * 100.0,
            tolerance = tolerance * 100.0
        );
        deltas.push(format!("{field} {:+.1}%", (ratio - 1.0) * 100.0));
        if fresh < floor {
            failures += 1;
        }
    }
    if skip {
        println!("bench_gate: BENCH_GATE_SKIP set — result ignored");
        return ExitCode::SUCCESS;
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: FAIL — {failures} field(s) regressed more than {:.0}% \
             (override with BENCH_GATE_SKIP=1 or BENCH_GATE_TOLERANCE)",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    // One compact per-field delta line on success, for drift forensics
    // straight from the CI log (machine-day drift vs real regressions).
    println!("bench_gate: PASS ({})", deltas.join(", "));
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{json_number, GATED_FIELDS};

    #[test]
    fn extracts_scalars() {
        let doc = r#"{ "a": 1.5, "batch_evals_per_s": 9155422.3, "b": {"c": 2} }"#;
        assert_eq!(json_number(doc, "batch_evals_per_s"), Some(9_155_422.3));
        assert_eq!(json_number(doc, "a"), Some(1.5));
        assert_eq!(json_number(doc, "missing"), None);
    }

    #[test]
    fn handles_exponents_and_negatives() {
        let doc = r#"{"x": -2.5e3,"y": 1e-2}"#;
        assert_eq!(json_number(doc, "x"), Some(-2500.0));
        assert_eq!(json_number(doc, "y"), Some(0.01));
    }

    /// The committed baseline must carry every gated field, or the gate
    /// silently shrinks to a subset.
    #[test]
    fn committed_baseline_has_every_gated_field() {
        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../benchmarks/BENCH_dse.json"
        ))
        .expect("committed baseline exists");
        for field in GATED_FIELDS {
            assert!(
                json_number(&doc, field).is_some(),
                "baseline snapshot is missing gated field `{field}`"
            );
        }
    }
}
