//! §5.2 optimizer comparison: the paper reports using genetic algorithms
//! and simulated annealing "without experiencing any relevant difference
//! in terms of quality of the solutions". This experiment gives NSGA-II,
//! MOSA and pure random search the same evaluation budget and compares
//! front quality via hypervolume and mutual coverage.
//!
//! Run: `cargo run --release -p wbsn-bench --bin optimizer_comparison`

use wbsn_bench::{header, row};
use wbsn_dse::evaluator::ModelEvaluator;
use wbsn_dse::mosa::{mosa, random_search, MosaConfig};
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::quality::{coverage, hypervolume_monte_carlo};
use wbsn_model::space::DesignSpace;

const BUDGET: usize = 12_000;

fn main() {
    let space = DesignSpace::case_study(6);
    let eval = ModelEvaluator::shimmer();

    println!("# §5.2 — optimizer comparison at equal budget ({BUDGET} evaluations)\n");

    let ga = nsga2(
        &space,
        &eval,
        &Nsga2Config {
            population: 100,
            generations: BUDGET / 100 - 1,
            seed: 7,
            ..Nsga2Config::default()
        },
    );
    let sa =
        mosa(&space, &eval, &MosaConfig { iterations: BUDGET, seed: 7, ..MosaConfig::default() });
    let rs = random_search(&space, &eval, BUDGET, 7);

    let fronts: Vec<(&str, Vec<ObjectiveVector>)> = vec![
        ("NSGA-II", ga.front.objectives().cloned().collect()),
        ("MOSA", sa.front.objectives().cloned().collect()),
        ("random", rs.front.objectives().cloned().collect()),
    ];

    // Common hypervolume box from the union of all fronts.
    let mut ideal = [f64::INFINITY; 3];
    let mut nadir = [f64::NEG_INFINITY; 3];
    for (_, front) in &fronts {
        for p in front {
            for d in 0..3 {
                ideal[d] = ideal[d].min(p.values()[d]);
                nadir[d] = nadir[d].max(p.values()[d]);
            }
        }
    }
    let reference: Vec<f64> = nadir.iter().map(|v| v * 1.05 + 1e-6).collect();
    let ideal_v: Vec<f64> = ideal.iter().map(|v| v - 1e-6).collect();

    header(&[
        "optimizer",
        "front size",
        "hypervolume (MC)",
        "covers NSGA-II %",
        "covered by NSGA-II %",
    ]);
    let ga_front = &fronts[0].1;
    for (name, front) in &fronts {
        let hv = hypervolume_monte_carlo(front, &ideal_v, &reference, 200_000, 99);
        row(&[
            (*name).to_string(),
            format!("{}", front.len()),
            format!("{hv:.4e}"),
            format!("{:.1}", coverage(front, ga_front) * 100.0),
            format!("{:.1}", coverage(ga_front, front) * 100.0),
        ]);
    }

    println!(
        "\npaper: GA and SA find fronts of comparable quality; both should dominate random search"
    );
}
