//! §5.2 optimizer comparison: the paper reports using genetic algorithms
//! and simulated annealing "without experiencing any relevant difference
//! in terms of quality of the solutions". This experiment gives NSGA-II,
//! MOSA and pure random search the same evaluation budget and compares
//! front quality via hypervolume and mutual coverage.
//!
//! The NSGA-II and MOSA runs share one [`GenomeMemo`]: both optimizers
//! converge toward the same feasible corners of the space, so candidates
//! the GA already evaluated are answered from the cache when annealing
//! revisits them (and vice versa on re-runs). Sharing is observationally
//! transparent — fronts are bit-identical to private-memo and memo-free
//! runs, which the `#[cfg(test)]` block of this binary asserts.
//!
//! Run: `cargo run --release -p wbsn-bench --bin optimizer_comparison`

use wbsn_bench::{header, row};
use wbsn_dse::evaluator::ModelEvaluator;
use wbsn_dse::memo::GenomeMemo;
use wbsn_dse::mosa::{mosa_with_memo, random_search, MosaConfig};
use wbsn_dse::nsga2::{nsga2_with_memo, Nsga2Config};
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::quality::{coverage, hypervolume_monte_carlo};
use wbsn_model::space::DesignSpace;

const BUDGET: usize = 12_000;

fn ga_config(budget: usize) -> Nsga2Config {
    Nsga2Config {
        population: 100,
        generations: budget / 100 - 1,
        seed: 7,
        ..Nsga2Config::default()
    }
}

fn sa_config(budget: usize) -> MosaConfig {
    MosaConfig { iterations: budget, seed: 7, ..MosaConfig::default() }
}

fn main() {
    let space = DesignSpace::case_study(6);
    let eval = ModelEvaluator::shimmer();

    println!("# §5.2 — optimizer comparison at equal budget ({BUDGET} evaluations)\n");

    let mut memo = GenomeMemo::new(true);
    let ga = nsga2_with_memo(&space, &eval, &ga_config(BUDGET), &mut memo);
    let ga_recorded = memo.len();
    let sa = mosa_with_memo(&space, &eval, &sa_config(BUDGET), &mut memo);
    let rs = random_search(&space, &eval, BUDGET, 7);
    println!(
        "shared genome memo: {} distinct genomes ({} recorded by NSGA-II), \
         {} NSGA-II hits, {} MOSA hits\n",
        memo.len(),
        ga_recorded,
        ga.memo_hits,
        sa.memo_hits
    );

    let fronts: Vec<(&str, Vec<ObjectiveVector>)> = vec![
        ("NSGA-II", ga.front.objectives().copied().collect()),
        ("MOSA", sa.front.objectives().copied().collect()),
        ("random", rs.front.objectives().copied().collect()),
    ];

    // Common hypervolume box from the union of all fronts.
    let mut ideal = [f64::INFINITY; 3];
    let mut nadir = [f64::NEG_INFINITY; 3];
    for (_, front) in &fronts {
        for p in front {
            for d in 0..3 {
                ideal[d] = ideal[d].min(p.values()[d]);
                nadir[d] = nadir[d].max(p.values()[d]);
            }
        }
    }
    let reference: Vec<f64> = nadir.iter().map(|v| v * 1.05 + 1e-6).collect();
    let ideal_v: Vec<f64> = ideal.iter().map(|v| v - 1e-6).collect();

    header(&[
        "optimizer",
        "front size",
        "hypervolume (MC)",
        "covers NSGA-II %",
        "covered by NSGA-II %",
    ]);
    let ga_front = &fronts[0].1;
    for (name, front) in &fronts {
        let hv = hypervolume_monte_carlo(front, &ideal_v, &reference, 200_000, 99);
        row(&[
            (*name).to_string(),
            format!("{}", front.len()),
            format!("{hv:.4e}"),
            format!("{:.1}", coverage(front, ga_front) * 100.0),
            format!("{:.1}", coverage(ga_front, front) * 100.0),
        ]);
    }

    println!(
        "\npaper: GA and SA find fronts of comparable quality; both should dominate random search"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbsn_dse::mosa::mosa;
    use wbsn_dse::nsga2::nsga2;

    /// The comparison's shared memo must not change what either
    /// optimizer finds: fronts and counters are bit-identical to
    /// private-memo runs and to memo-free runs.
    #[test]
    fn shared_memo_runs_match_private_and_memo_free_runs_bitwise() {
        let space = DesignSpace::case_study(4);
        let eval = ModelEvaluator::shimmer();
        let budget = 1200;

        let mut memo = GenomeMemo::new(true);
        let ga_shared = nsga2_with_memo(&space, &eval, &ga_config(budget), &mut memo);
        let sa_shared = mosa_with_memo(&space, &eval, &sa_config(budget), &mut memo);
        assert!(!memo.is_empty(), "shared memo must have recorded genomes");

        let ga_private = nsga2(&space, &eval, &ga_config(budget));
        let sa_private = mosa(&space, &eval, &sa_config(budget));
        let ga_off = nsga2(&space, &eval, &Nsga2Config { memo: false, ..ga_config(budget) });
        let sa_off = mosa(&space, &eval, &MosaConfig { memo: false, ..sa_config(budget) });

        for (shared, private, off) in
            [(&ga_shared, &ga_private, &ga_off), (&sa_shared, &sa_private, &sa_off)]
        {
            assert_eq!(shared.evaluations, private.evaluations);
            assert_eq!(shared.infeasible, private.infeasible);
            assert_eq!(shared.front.entries(), private.front.entries());
            assert_eq!(shared.evaluations, off.evaluations);
            assert_eq!(shared.infeasible, off.infeasible);
            assert_eq!(shared.front.entries(), off.front.entries());
        }
        // Private NSGA-II and the shared run see the same genome stream,
        // so their hit counts agree; MOSA's hits can only grow when the
        // GA's recordings answer extra lookups.
        assert_eq!(ga_shared.memo_hits, ga_private.memo_hits);
        assert!(sa_shared.memo_hits >= sa_private.memo_hits);
        assert_eq!(ga_off.memo_hits, 0);
        assert_eq!(sa_off.memo_hits, 0);
    }
}
