//! §5.2 evaluation-speed comparison: analytical model vs packet-level
//! simulation.
//!
//! Paper's result: the model evaluates ≈4800 configurations per second
//! while one network simulation takes 5–10 minutes — about six orders of
//! magnitude. Our Rust model is faster and our simulator much faster
//! than Castalia, but the *ratio* is what the experiment establishes.
//!
//! Run: `cargo run --release -p wbsn-bench --bin dse_throughput`

use std::time::Instant;
use wbsn_model::evaluate::{half_dwt_half_cs, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;
use wbsn_sim::engine::NetworkBuilder;

const MODEL_EVALS: usize = 200_000;
const SIM_RUNS: usize = 5;
const SIM_SECONDS: f64 = 60.0;

fn main() {
    println!("# §5.2 — evaluation throughput, model vs simulation\n");
    let model = WbsnModel::shimmer();
    let space = DesignSpace::case_study(6);

    // Cycle through distinct design points so the benchmark cannot be
    // constant-folded and covers feasible + infeasible regions.
    let mut counter = 0usize;
    let points: Vec<_> = (0..512)
        .map(|i| {
            space.point_with(|dim| {
                counter = counter.wrapping_mul(6364136223846793005).wrapping_add(i + dim);
                counter % dim.max(1)
            })
        })
        .collect();

    let t0 = Instant::now();
    let mut feasible = 0usize;
    for i in 0..MODEL_EVALS {
        let p = &points[i % points.len()];
        if model.evaluate(&p.mac, &p.nodes).is_ok() {
            feasible += 1;
        }
    }
    let model_elapsed = t0.elapsed();
    let model_per_s = MODEL_EVALS as f64 / model_elapsed.as_secs_f64();
    println!(
        "model: {MODEL_EVALS} evaluations in {:.3} s  =>  {:.0} evaluations/s ({feasible} feasible)",
        model_elapsed.as_secs_f64(),
        model_per_s
    );

    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    let t0 = Instant::now();
    for seed in 0..SIM_RUNS {
        let report = NetworkBuilder::new(mac, nodes.clone())
            .duration_s(SIM_SECONDS)
            .seed(seed as u64)
            .build()
            .expect("feasible")
            .run();
        assert!(report.all_feasible());
    }
    let sim_elapsed = t0.elapsed().as_secs_f64() / SIM_RUNS as f64;
    println!(
        "simulation: one {SIM_SECONDS:.0}-simulated-second evaluation takes {:.4} s (avg of {SIM_RUNS})",
        sim_elapsed
    );

    let ratio = model_per_s * sim_elapsed;
    println!("\nmodel-vs-simulation speedup: {ratio:.2e}x");
    println!(
        "paper: ~4800 evaluations/s vs 5-10 min per simulation (~10^6x)\n\
         shape check (model faster than paper's 4800/s AND >100x our own simulator): {}",
        if model_per_s > 4800.0 && ratio > 1e2 { "PASS" } else { "FAIL" }
    );
    println!(
        "note: Castalia needs minutes per configuration where our simulator needs {:.0} ms — \n\
         against a Castalia-like 300 s simulation the model's speedup would be {:.1e}x",
        sim_elapsed * 1e3,
        model_per_s * 300.0
    );
}
