//! §5.2 evaluation-speed comparison: analytical model vs packet-level
//! simulation, plus the batch-evaluation engine's serial-vs-batch
//! throughput (the perf baseline tracked across PRs in `BENCH_dse.json`).
//!
//! Paper's result: the model evaluates ≈4800 configurations per second
//! while one network simulation takes 5–10 minutes — about six orders of
//! magnitude. Our Rust model is faster and our simulator much faster
//! than Castalia, but the *ratio* is what the experiment establishes.
//!
//! On top of the paper's comparison, this binary measures the three
//! evaluation paths of the engine:
//!
//! * **serial** — `WbsnModel::evaluate` per point (allocating, no memo);
//! * **fast path** — `WbsnModel::evaluate_objectives` through one
//!   reused `EvalScratch` (allocation-free, node-level memoization);
//! * **batch** — `Evaluator::evaluate_batch`, the fast path fanned out
//!   across all cores.
//!
//! Run: `cargo run --release -p wbsn-bench --bin dse_throughput`

use std::fmt::Write as _;
use std::time::Instant;
use wbsn_dse::evaluator::{Evaluator, ModelEvaluator};
use wbsn_dse::parallel::num_threads;
use wbsn_model::evaluate::{half_dwt_half_cs, EvalScratch, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;
use wbsn_sim::engine::NetworkBuilder;

const MODEL_EVALS: usize = 200_000;
const SIM_RUNS: usize = 5;
const SIM_SECONDS: f64 = 60.0;
const TRAJECTORY_SIZES: [usize; 5] = [256, 1024, 4096, 16_384, 65_536];

fn main() {
    println!("# §5.2 — evaluation throughput\n");
    let model = WbsnModel::shimmer();
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(512);

    // --- Path 1: serial full evaluation (the pre-batch baseline). ---
    let t0 = Instant::now();
    let mut feasible = 0usize;
    for i in 0..MODEL_EVALS {
        let p = &points[i % points.len()];
        if model.evaluate(&p.mac, &p.nodes).is_ok() {
            feasible += 1;
        }
    }
    let serial_per_s = MODEL_EVALS as f64 / t0.elapsed().as_secs_f64();
    println!(
        "serial    (evaluate):            {serial_per_s:>12.0} evaluations/s  ({feasible} feasible of {MODEL_EVALS})"
    );

    // --- Path 2: allocation-free fast path, one scratch, one core. ---
    let mut scratch = EvalScratch::new();
    let t0 = Instant::now();
    let mut fast_feasible = 0usize;
    for i in 0..MODEL_EVALS {
        let p = &points[i % points.len()];
        if model.evaluate_objectives(&p.mac, &p.nodes, &mut scratch).is_ok() {
            fast_feasible += 1;
        }
    }
    let fastpath_per_s = MODEL_EVALS as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(feasible, fast_feasible, "fast path must agree with evaluate()");
    println!(
        "fast path (evaluate_objectives): {fastpath_per_s:>12.0} evaluations/s  (memo: {} hits / {} misses)",
        scratch.memo_hits(),
        scratch.memo_misses()
    );

    // --- Path 3: parallel batch over all cores. ---
    let threads = num_threads();
    let evaluator = ModelEvaluator::shimmer();
    let mut trajectory: Vec<(usize, f64)> = Vec::new();
    for &size in &TRAJECTORY_SIZES {
        let batch_points = space.sample_sweep(size);
        // Time-budgeted: repeat each batch size for ≥ 0.5 s so small
        // batches are not drowned in measurement noise.
        let t0 = Instant::now();
        let mut batch_feasible = 0usize;
        let mut evals = 0usize;
        while t0.elapsed().as_secs_f64() < 0.5 {
            batch_feasible =
                evaluator.evaluate_batch(&batch_points).iter().filter(|o| o.is_some()).count();
            evals += size;
        }
        let per_s = evals as f64 / t0.elapsed().as_secs_f64();
        trajectory.push((size, per_s));
        println!(
            "batch     (evaluate_batch, n={size:>6}): {per_s:>12.0} evaluations/s  ({batch_feasible} feasible, {threads} threads)"
        );
    }
    let batch_per_s = trajectory.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);

    let fastpath_speedup = fastpath_per_s / serial_per_s;
    let batch_speedup = batch_per_s / serial_per_s;
    println!("\nfast-path vs serial speedup: {fastpath_speedup:.2}x");
    println!("batch     vs serial speedup: {batch_speedup:.2}x  ({threads} threads)");
    println!(
        "speedup gate (>=4x batch-vs-serial on a multicore runner): {}",
        if batch_speedup >= 4.0 { "PASS" } else { "below gate (few cores?)" }
    );

    // --- Model vs packet-level simulation (the paper's §5.2 claim). ---
    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    let t0 = Instant::now();
    for seed in 0..SIM_RUNS {
        let report = NetworkBuilder::new(mac, nodes.clone())
            .duration_s(SIM_SECONDS)
            .seed(seed as u64)
            .build()
            .expect("feasible")
            .run();
        assert!(report.all_feasible());
    }
    let sim_elapsed = t0.elapsed().as_secs_f64() / SIM_RUNS as f64;
    println!(
        "\nsimulation: one {SIM_SECONDS:.0}-simulated-second evaluation takes {sim_elapsed:.4} s (avg of {SIM_RUNS})"
    );
    let ratio = batch_per_s * sim_elapsed;
    println!("model-vs-simulation speedup (batch path): {ratio:.2e}x");
    println!(
        "paper: ~4800 evaluations/s vs 5-10 min per simulation (~10^6x)\n\
         shape check (model faster than paper's 4800/s AND >100x our own simulator): {}",
        if serial_per_s > 4800.0 && ratio > 1e2 { "PASS" } else { "FAIL" }
    );
    println!(
        "note: Castalia needs minutes per configuration where our simulator needs {:.0} ms — \n\
         against a Castalia-like 300 s simulation the batch path's speedup would be {:.1e}x",
        sim_elapsed * 1e3,
        batch_per_s * 300.0
    );

    // --- Machine-readable trajectory for cross-PR tracking. ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dse_throughput\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"serial_evals_per_s\": {serial_per_s:.1},");
    let _ = writeln!(json, "  \"fastpath_evals_per_s\": {fastpath_per_s:.1},");
    let _ = writeln!(json, "  \"batch_evals_per_s\": {batch_per_s:.1},");
    let _ = writeln!(json, "  \"speedup_fastpath_vs_serial\": {fastpath_speedup:.3},");
    let _ = writeln!(json, "  \"speedup_batch_vs_serial\": {batch_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"memo\": {{\"hits\": {}, \"misses\": {}}},",
        scratch.memo_hits(),
        scratch.memo_misses()
    );
    let _ = writeln!(json, "  \"sim_seconds_per_eval\": {sim_elapsed:.6},");
    let _ = writeln!(json, "  \"model_vs_sim_speedup\": {ratio:.1},");
    json.push_str("  \"trajectory\": [\n");
    for (i, (size, per_s)) in trajectory.iter().enumerate() {
        let comma = if i + 1 < trajectory.len() { "," } else { "" };
        let _ =
            writeln!(json, "    {{\"batch_size\": {size}, \"evals_per_s\": {per_s:.1}}}{comma}");
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_dse.json", &json) {
        Ok(()) => println!("\nwrote BENCH_dse.json"),
        Err(e) => eprintln!("\ncould not write BENCH_dse.json: {e}"),
    }
}
