//! §5.2 evaluation-speed comparison: analytical model vs packet-level
//! simulation, plus the batch-evaluation engine's serial-vs-batch
//! throughput (the perf baseline tracked across PRs in `BENCH_dse.json`).
//!
//! Paper's result: the model evaluates ≈4800 configurations per second
//! while one network simulation takes 5–10 minutes — about six orders of
//! magnitude. Our Rust model is faster and our simulator much faster
//! than Castalia, but the *ratio* is what the experiment establishes.
//!
//! On top of the paper's comparison, this binary measures the six
//! evaluation paths of the engine:
//!
//! * **serial** — `WbsnModel::evaluate` per point (allocating, no memo);
//! * **fast path** — `WbsnModel::evaluate_objectives` through one
//!   reused `EvalScratch` (allocation-free, node-level memoization);
//! * **`SoA` kernel** — `WbsnModel::evaluate_objectives_batch` through one
//!   reused `SoaScratch` (struct-of-arrays, interned node/MAC/cell
//!   tables, mask-based infeasibility) on a single core;
//! * **`SoA` grouped** — `WbsnModel::evaluate_objectives_batch_grouped`,
//!   the same tables with the batch sorted by interned MAC entry and
//!   same-MAC runs reduced over transposed `node × point` lanes;
//! * **`SoA` full** — `WbsnModel::evaluate_batch_full`, the
//!   full-evaluation kernel emitting per-node energy-breakdown / delay /
//!   PRD / slot lanes into caller-owned arrays;
//! * **batch** — `Evaluator::evaluate_batch`, the `SoA` kernel (engine
//!   keyed on node count) fanned out across all cores chunk by chunk.
//!
//! A 16-node large-deployment sweep additionally measures the grouped
//! kernel's crossover claim (grouped ≥ ungrouped on wide networks) and
//! the batch path at 16 nodes (`batch_evals_per_s_16node`, gated).
//!
//! The ground-truth harness numbers ride along: the axis-major
//! incremental sweep's full-space throughput on the paper-2node truth
//! scenario (`sweep_incremental_points_per_s`, gated, with the
//! canonical sweep alongside for the speedup ratio) and NSGA-II's
//! deterministic quality against the exact front
//! (`hypervolume_ratio_nsga2` / `front_coverage_nsga2`, held to
//! absolute floors by `bench_gate` — see `wbsn_dse::truth`).
//!
//! Two debug counters make the allocation-free claims measurable here
//! rather than asserted elsewhere: a counting global allocator reports
//! heap allocations per evaluation on the fast path and per point on the
//! decode+evaluate path (both 0 in steady state), and an NSGA-II run
//! reports its genome-memo hit rate (evaluator calls skipped by dedup).
//!
//! Run: `cargo run --release -p wbsn-bench --bin dse_throughput`

use alloc_counter::{allocation_count as allocations, CountingAlloc};
use std::fmt::Write as _;
use std::time::Instant;
use wbsn_dse::evaluator::{Evaluator, ModelEvaluator};
use wbsn_dse::exhaustive::{exhaustive, exhaustive_incremental};
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_dse::parallel::{num_threads, parallel_map_with_block, with_threads};
use wbsn_dse::truth::{self, TruthFront};
use wbsn_model::evaluate::{half_dwt_half_cs, EvalScratch, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::soa::SoaScratch;
use wbsn_model::space::DesignSpace;
use wbsn_model::units::Hertz;
use wbsn_sim::engine::NetworkBuilder;

const MODEL_EVALS: usize = 200_000;
const SIM_RUNS: usize = 5;
const SIM_SECONDS: f64 = 60.0;
const TRAJECTORY_SIZES: [usize; 5] = [256, 1024, 4096, 16_384, 65_536];

// The debug counter behind the `*_allocs_per_eval` fields of
// `BENCH_dse.json` (shared with `crates/dse/tests/alloc_free.rs`).
#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn main() {
    println!("# §5.2 — evaluation throughput\n");
    let model = WbsnModel::shimmer();
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(512);

    // --- Path 1: serial full evaluation (the pre-batch baseline). ---
    let t0 = Instant::now();
    let mut feasible = 0usize;
    for i in 0..MODEL_EVALS {
        let p = &points[i % points.len()];
        if model.evaluate(&p.mac, &p.nodes).is_ok() {
            feasible += 1;
        }
    }
    let serial_per_s = MODEL_EVALS as f64 / t0.elapsed().as_secs_f64();
    println!(
        "serial    (evaluate):            {serial_per_s:>12.0} evaluations/s  ({feasible} feasible of {MODEL_EVALS})"
    );

    // --- Path 2: allocation-free fast path, one scratch, one core. ---
    let mut scratch = EvalScratch::new();
    // Warmup: touch every point once so the node memo, boxed app models
    // and scratch buffers grow *before* the counted window — the
    // measured steady state is exactly allocation-free, not "first-use
    // growth amortized over the loop".
    for p in &points {
        let _ = model.evaluate_objectives(&p.mac, &p.nodes, &mut scratch);
    }
    let t0 = Instant::now();
    let mut fast_feasible = 0usize;
    let allocs_before = allocations();
    for i in 0..MODEL_EVALS {
        let p = &points[i % points.len()];
        if model.evaluate_objectives(&p.mac, &p.nodes, &mut scratch).is_ok() {
            fast_feasible += 1;
        }
    }
    let fastpath_allocs_per_eval = (allocations() - allocs_before) as f64 / MODEL_EVALS as f64;
    assert_eq!(
        fastpath_allocs_per_eval, 0.0,
        "warmed fast path must be allocation-free in steady state"
    );
    let fastpath_per_s = MODEL_EVALS as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(feasible, fast_feasible, "fast path must agree with evaluate()");
    println!(
        "fast path (evaluate_objectives): {fastpath_per_s:>12.0} evaluations/s  (memo: {} hits / {} misses, {fastpath_allocs_per_eval:.6} allocs/eval)",
        scratch.memo_hits(),
        scratch.memo_misses()
    );

    // --- Decode + evaluate per point (the batch pipeline's inner loop,
    //     minus threading): must be allocation-free in steady state. ---
    let total = space.cardinality();
    let decode_rounds = 65_536u128;
    let mut decode_scratch = EvalScratch::new();
    let decode_eval = |scratch: &mut EvalScratch| {
        let mut feasible = 0u64;
        for m in 0..decode_rounds {
            let index = (m.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % total;
            let p = space.point_at(index);
            if model.evaluate_objectives(&p.mac, &p.nodes, scratch).is_ok() {
                feasible += 1;
            }
        }
        feasible
    };
    decode_eval(&mut decode_scratch); // warmup: populate the node memo
    let allocs_before = allocations();
    let t0 = Instant::now();
    let decode_feasible = decode_eval(&mut decode_scratch);
    let decode_per_s = decode_rounds as f64 / t0.elapsed().as_secs_f64();
    let decode_allocs_per_point = (allocations() - allocs_before) as f64 / decode_rounds as f64;
    println!(
        "decode+eval (point_at → objectives): {decode_per_s:>8.0} points/s      ({decode_feasible} feasible, {decode_allocs_per_point:.6} allocs/point)"
    );

    // --- Path 3: the SoA kernel, one scratch, one core. ---
    let soa_points = space.sample_sweep(16_384);
    let mut soa_scratch = SoaScratch::new();
    // Warmup: intern the grid/MAC tables and fill the cell cache.
    let soa_warm_feasible = model
        .evaluate_objectives_batch(&soa_points, &mut soa_scratch)
        .iter()
        .filter(|o| o.is_ok())
        .count();
    let allocs_before = allocations();
    let t0 = Instant::now();
    let mut soa_evals = 0usize;
    let mut soa_feasible = 0usize;
    while t0.elapsed().as_secs_f64() < 0.5 {
        soa_feasible = model
            .evaluate_objectives_batch(&soa_points, &mut soa_scratch)
            .iter()
            .filter(|o| o.is_ok())
            .count();
        soa_evals += soa_points.len();
    }
    let soa_per_s = soa_evals as f64 / t0.elapsed().as_secs_f64();
    let soa_allocs_per_eval = (allocations() - allocs_before) as f64 / soa_evals as f64;
    assert_eq!(soa_feasible, soa_warm_feasible, "SoA kernel must be deterministic");
    println!(
        "SoA kernel (evaluate_objectives_batch): {soa_per_s:>8.0} evaluations/s  ({soa_feasible} feasible of {}, grid {} × macs {}, {soa_allocs_per_eval:.6} allocs/eval)",
        soa_points.len(),
        soa_scratch.grid_len(),
        soa_scratch.mac_len()
    );

    // --- Path 3b: the MAC-grouped SoA kernel, one scratch, one core.
    //     Same tables as path 3, transposed same-MAC reduction. ---
    let _ = model.evaluate_objectives_batch_grouped(&soa_points, &mut soa_scratch);
    let allocs_before = allocations();
    let t0 = Instant::now();
    let mut grouped_evals = 0usize;
    let mut grouped_feasible = 0usize;
    while t0.elapsed().as_secs_f64() < 0.5 {
        grouped_feasible = model
            .evaluate_objectives_batch_grouped(&soa_points, &mut soa_scratch)
            .iter()
            .filter(|o| o.is_ok())
            .count();
        grouped_evals += soa_points.len();
    }
    let soa_grouped_per_s = grouped_evals as f64 / t0.elapsed().as_secs_f64();
    let soa_grouped_allocs_per_eval = (allocations() - allocs_before) as f64 / grouped_evals as f64;
    assert_eq!(grouped_feasible, soa_warm_feasible, "grouping must not change outcomes");
    println!(
        "SoA grouped (objectives_batch_grouped): {soa_grouped_per_s:>8.0} evaluations/s  ({grouped_feasible} feasible, {soa_grouped_allocs_per_eval:.6} allocs/eval)"
    );

    // --- Path 3c: the full-evaluation batch kernel — per-node energy
    //     breakdown / delay / PRD / slot lanes, not just objectives. ---
    let mut full_out = wbsn_model::soa::FullEvalOut::new();
    model.evaluate_batch_full(&soa_points, &mut soa_scratch, &mut full_out);
    let full_warm_feasible = full_out.outcomes().iter().filter(|o| o.is_ok()).count();
    let allocs_before = allocations();
    let t0 = Instant::now();
    let mut full_evals = 0usize;
    let mut full_feasible = 0usize;
    while t0.elapsed().as_secs_f64() < 0.5 {
        model.evaluate_batch_full(&soa_points, &mut soa_scratch, &mut full_out);
        full_feasible = full_out.outcomes().iter().filter(|o| o.is_ok()).count();
        full_evals += soa_points.len();
    }
    let full_per_s = full_evals as f64 / t0.elapsed().as_secs_f64();
    let full_allocs_per_eval = (allocations() - allocs_before) as f64 / full_evals as f64;
    assert_eq!(full_feasible, soa_warm_feasible, "full kernel must agree on feasibility");
    assert_eq!(full_feasible, full_warm_feasible, "full kernel must be deterministic");
    println!(
        "SoA full  (evaluate_batch_full):        {full_per_s:>8.0} evaluations/s  ({full_feasible} feasible, per-node lanes, {full_allocs_per_eval:.6} allocs/eval)"
    );

    // --- Path 4: parallel batch over all cores. ---
    let threads = num_threads();
    let evaluator = ModelEvaluator::shimmer();
    let mut trajectory: Vec<(usize, f64)> = Vec::new();
    for &size in &TRAJECTORY_SIZES {
        let batch_points = space.sample_sweep(size);
        // Time-budgeted: repeat each batch size for ≥ 0.5 s so small
        // batches are not drowned in measurement noise.
        let t0 = Instant::now();
        let mut batch_feasible = 0usize;
        let mut evals = 0usize;
        while t0.elapsed().as_secs_f64() < 0.5 {
            batch_feasible =
                evaluator.evaluate_batch(&batch_points).iter().filter(|o| o.is_some()).count();
            evals += size;
        }
        let per_s = evals as f64 / t0.elapsed().as_secs_f64();
        trajectory.push((size, per_s));
        println!(
            "batch     (evaluate_batch, n={size:>6}): {per_s:>12.0} evaluations/s  ({batch_feasible} feasible, {threads} threads)"
        );
    }
    let batch_per_s = trajectory.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);

    // --- Path 4a (THREAD_SWEEP=1): batch-path thread scaling. The same
    //     large batch at 1/2/4/N threads through `with_threads`, with
    //     per-count parallel efficiency rate(t) / (t · rate(1)). The
    //     rows land in `BENCH_dse.json` as `thread_sweep`, and the best
    //     multi-thread efficiency arms `bench_gate`'s scaling gate on
    //     runners that actually have the cores. ---
    let thread_sweep: Option<Vec<(usize, f64, f64)>> = if std::env::var("THREAD_SWEEP")
        .is_ok_and(|v| v == "1")
    {
        let sweep_points = space.sample_sweep(16_384);
        let mut counts = vec![1usize, 2, 4, threads];
        counts.sort_unstable();
        counts.dedup();
        counts.retain(|&t| t <= threads);
        let _ = evaluator.evaluate_batch(&sweep_points); // warm the pools
        let mut rows: Vec<(usize, f64, f64)> = Vec::new();
        let mut rate_1 = 0.0f64;
        for &t in &counts {
            let rate = with_threads(t, || {
                let t0 = Instant::now();
                let mut evals = 0usize;
                while t0.elapsed().as_secs_f64() < 0.5 {
                    let _ = evaluator.evaluate_batch(&sweep_points);
                    evals += sweep_points.len();
                }
                evals as f64 / t0.elapsed().as_secs_f64()
            });
            if t == 1 {
                rate_1 = rate;
            }
            let efficiency = rate / (t as f64 * rate_1);
            rows.push((t, rate, efficiency));
            println!(
                    "thread sweep: {t:>2} threads {rate:>12.0} evaluations/s  efficiency {efficiency:.3}"
                );
        }
        Some(rows)
    } else {
        None
    };

    // --- Path 4b: 16-node large-deployment sweep — the grouped
    //     kernel's crossover territory. Measures the node-count-keyed
    //     engine claim (grouped ≥ ungrouped at 16 nodes) instead of
    //     folklore, and gates the batch path on it
    //     (`batch_evals_per_s_16node`). ---
    let space16 = DesignSpace::case_study(16);
    let points16 = space16.sample_sweep(4096);
    let mut scratch16 = SoaScratch::new();
    let warm16_feasible = model
        .evaluate_objectives_batch(&points16, &mut scratch16)
        .iter()
        .filter(|o| o.is_ok())
        .count();
    let t0 = Instant::now();
    let mut soa16_evals = 0usize;
    while t0.elapsed().as_secs_f64() < 0.5 {
        let _ = model.evaluate_objectives_batch(&points16, &mut scratch16);
        soa16_evals += points16.len();
    }
    let soa16_per_s = soa16_evals as f64 / t0.elapsed().as_secs_f64();
    let _ = model.evaluate_objectives_batch_grouped(&points16, &mut scratch16);
    let t0 = Instant::now();
    let mut grouped16_evals = 0usize;
    // The feasibility scan stays outside the timed window (the
    // ungrouped loop above has none, and this ratio is the crossover
    // number the engine-dispatch tuning cites).
    while t0.elapsed().as_secs_f64() < 0.5 {
        let _ = model.evaluate_objectives_batch_grouped(&points16, &mut scratch16);
        grouped16_evals += points16.len();
    }
    let soa_grouped16_per_s = grouped16_evals as f64 / t0.elapsed().as_secs_f64();
    let grouped16_feasible = model
        .evaluate_objectives_batch_grouped(&points16, &mut scratch16)
        .iter()
        .filter(|o| o.is_ok())
        .count();
    assert_eq!(grouped16_feasible, warm16_feasible, "grouping must not change outcomes");
    let _ = evaluator.evaluate_batch(&points16);
    // Best of three windows, mirroring the 6-node trajectory's
    // max-over-sizes convention: this field is gated, and a single
    // 0.5 s window on a shared runner swings far more than the gate
    // tolerance.
    let mut batch16_per_s = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut batch16_evals = 0usize;
        while t0.elapsed().as_secs_f64() < 0.5 {
            let _ = evaluator.evaluate_batch(&points16);
            batch16_evals += points16.len();
        }
        batch16_per_s = batch16_per_s.max(batch16_evals as f64 / t0.elapsed().as_secs_f64());
    }
    println!(
        "16-node sweep: ungrouped {soa16_per_s:>10.0}/s | grouped {soa_grouped16_per_s:>10.0}/s \
         (ratio {:.3}) | batch {batch16_per_s:>10.0}/s ({warm16_feasible} feasible of {})",
        soa_grouped16_per_s / soa16_per_s,
        points16.len()
    );

    // --- Ground-truth harness numbers: the axis-major incremental
    //     sweep's full-space throughput and NSGA-II's quality against
    //     the exact front (the three fields the truth harness gates).
    //     The quality values are deterministic (seeded searcher, seeded
    //     Monte-Carlo estimator), so `bench_gate` holds them to
    //     absolute floors rather than a noise tolerance. ---
    let truth_scenario = truth::paper_2node();
    let truth_total = truth_scenario.space.cardinality();
    let truth_front = TruthFront::compute(&truth_scenario, &evaluator); // warmup + reference
    let t0 = Instant::now();
    let mut sweep_points = 0u128;
    while t0.elapsed().as_secs_f64() < 0.5 {
        let sweep = exhaustive_incremental(&truth_scenario.space, &evaluator, truth::TRUTH_LIMIT);
        assert_eq!(
            sweep.evaluations - sweep.infeasible,
            truth_front.feasible,
            "incremental sweep must be deterministic"
        );
        sweep_points += truth_total;
    }
    let sweep_incremental_per_s = sweep_points as f64 / t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut canonical_points = 0u128;
    while t0.elapsed().as_secs_f64() < 0.5 {
        let _ = exhaustive(&truth_scenario.space, &evaluator, truth::TRUTH_LIMIT);
        canonical_points += truth_total;
    }
    let sweep_canonical_per_s = canonical_points as f64 / t0.elapsed().as_secs_f64();
    println!(
        "truth sweep ({}, {truth_total} points): incremental {sweep_incremental_per_s:>10.0} points/s | \
         canonical {sweep_canonical_per_s:>10.0} points/s (ratio {:.3}, {} feasible, front {})",
        truth_scenario.name,
        sweep_incremental_per_s / sweep_canonical_per_s,
        truth_front.feasible,
        truth_front.objectives.len()
    );
    let truth_ga = nsga2(&truth_scenario.space, &evaluator, &Nsga2Config::default());
    let truth_ga_front: Vec<_> = truth_ga.front.objectives().copied().collect();
    let quality = truth_front.quality_of(&truth_ga_front);
    println!(
        "nsga2 vs truth ({}): hypervolume_ratio {:.4}, front_coverage {:.4} (floors {} / {})",
        truth_scenario.name,
        quality.hypervolume_ratio,
        quality.front_coverage,
        truth::NSGA2_MIN_HYPERVOLUME_RATIO,
        truth::NSGA2_MIN_FRONT_COVERAGE
    );

    // --- Genome-memo dedup: how many evaluator calls NSGA-II skips. ---
    let ga_cfg =
        Nsga2Config { population: 64, generations: 60, seed: 42, ..Nsga2Config::default() };
    let t0 = Instant::now();
    let ga = nsga2(&space, &evaluator, &ga_cfg);
    let ga_elapsed = t0.elapsed().as_secs_f64();
    let ga_hit_rate = ga.memo_hits as f64 / ga.evaluations as f64;
    println!(
        "nsga2 genome memo: {} of {} evaluations deduped ({:.1}% hit rate, front {} in {:.3} s)",
        ga.memo_hits,
        ga.evaluations,
        ga_hit_rate * 100.0,
        ga.front.len(),
        ga_elapsed
    );

    let fastpath_speedup = fastpath_per_s / serial_per_s;
    let soa_speedup = soa_per_s / serial_per_s;
    let batch_speedup = batch_per_s / serial_per_s;
    println!("\nfast-path vs serial speedup: {fastpath_speedup:.2}x");
    println!("SoA       vs serial speedup: {soa_speedup:.2}x  (one core)");
    println!("batch     vs serial speedup: {batch_speedup:.2}x  ({threads} threads)");
    println!(
        "speedup gate (>=4x batch-vs-serial on a multicore runner): {}",
        if batch_speedup >= 4.0 { "PASS" } else { "below gate (few cores?)" }
    );

    // --- Model vs packet-level simulation (the paper's §5.2 claim). ---
    // Simulations are independent per seed, so they fan out across cores
    // (block = 1: each run is a long job). Each run times *itself*, and
    // the reported per-evaluation cost is the mean of those individual
    // durations — a thread-count-independent number, comparable across
    // machines and against the committed 1-thread baseline (fan-out only
    // shrinks the fleet's wall-clock, not the per-run figure).
    let mac = Ieee802154Config::new(114, 6, 6).expect("valid");
    let nodes = half_dwt_half_cs(6, 0.25, Hertz::from_mhz(8.0));
    let seeds: Vec<u64> = (0..SIM_RUNS as u64).collect();
    let timed_reports = parallel_map_with_block(
        &seeds,
        1,
        || (),
        |(), &seed| {
            let t0 = Instant::now();
            let report = NetworkBuilder::new(mac, nodes.clone())
                .duration_s(SIM_SECONDS)
                .seed(seed)
                .build()
                .expect("feasible")
                .run();
            (report, t0.elapsed().as_secs_f64())
        },
    );
    let sim_elapsed = timed_reports.iter().map(|(_, secs)| secs).sum::<f64>() / SIM_RUNS as f64;
    for (report, _) in &timed_reports {
        assert!(report.all_feasible());
    }
    println!(
        "\nsimulation: one {SIM_SECONDS:.0}-simulated-second evaluation takes {sim_elapsed:.4} s (avg of {SIM_RUNS})"
    );
    let ratio = batch_per_s * sim_elapsed;
    println!("model-vs-simulation speedup (batch path): {ratio:.2e}x");
    println!(
        "paper: ~4800 evaluations/s vs 5-10 min per simulation (~10^6x)\n\
         shape check (model faster than paper's 4800/s AND >100x our own simulator): {}",
        if serial_per_s > 4800.0 && ratio > 1e2 { "PASS" } else { "FAIL" }
    );
    println!(
        "note: Castalia needs minutes per configuration where our simulator needs {:.0} ms — \n\
         against a Castalia-like 300 s simulation the batch path's speedup would be {:.1e}x",
        sim_elapsed * 1e3,
        batch_per_s * 300.0
    );

    // --- Machine-readable trajectory for cross-PR tracking. ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dse_throughput\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"serial_evals_per_s\": {serial_per_s:.1},");
    let _ = writeln!(json, "  \"fastpath_evals_per_s\": {fastpath_per_s:.1},");
    let _ = writeln!(json, "  \"soa_evals_per_s\": {soa_per_s:.1},");
    let _ = writeln!(json, "  \"soa_grouped_evals_per_s\": {soa_grouped_per_s:.1},");
    let _ = writeln!(json, "  \"full_evals_per_s\": {full_per_s:.1},");
    let _ = writeln!(json, "  \"batch_evals_per_s\": {batch_per_s:.1},");
    let _ = writeln!(json, "  \"soa_evals_per_s_16node\": {soa16_per_s:.1},");
    let _ = writeln!(json, "  \"soa_grouped_evals_per_s_16node\": {soa_grouped16_per_s:.1},");
    let _ = writeln!(json, "  \"batch_evals_per_s_16node\": {batch16_per_s:.1},");
    let _ = writeln!(json, "  \"speedup_fastpath_vs_serial\": {fastpath_speedup:.3},");
    let _ = writeln!(json, "  \"speedup_soa_vs_serial\": {soa_speedup:.3},");
    let _ = writeln!(json, "  \"speedup_batch_vs_serial\": {batch_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"memo\": {{\"hits\": {}, \"misses\": {}}},",
        scratch.memo_hits(),
        scratch.memo_misses()
    );
    let _ = writeln!(json, "  \"fastpath_allocs_per_eval\": {fastpath_allocs_per_eval:.6},");
    let _ = writeln!(json, "  \"soa_allocs_per_eval\": {soa_allocs_per_eval:.6},");
    let _ = writeln!(json, "  \"soa_grouped_allocs_per_eval\": {soa_grouped_allocs_per_eval:.6},");
    let _ = writeln!(json, "  \"full_allocs_per_eval\": {full_allocs_per_eval:.6},");
    let _ = writeln!(json, "  \"decode_allocs_per_point\": {decode_allocs_per_point:.6},");
    let _ = writeln!(json, "  \"decode_eval_points_per_s\": {decode_per_s:.1},");
    let _ = writeln!(json, "  \"sweep_incremental_points_per_s\": {sweep_incremental_per_s:.1},");
    let _ = writeln!(json, "  \"sweep_canonical_points_per_s\": {sweep_canonical_per_s:.1},");
    let _ = writeln!(json, "  \"hypervolume_ratio_nsga2\": {:.4},", quality.hypervolume_ratio);
    let _ = writeln!(json, "  \"front_coverage_nsga2\": {:.4},", quality.front_coverage);
    let _ = writeln!(
        json,
        "  \"nsga2_memo\": {{\"evaluations\": {}, \"hits\": {}, \"hit_rate\": {:.4}}},",
        ga.evaluations, ga.memo_hits, ga_hit_rate
    );
    let _ = writeln!(json, "  \"sim_seconds_per_eval\": {sim_elapsed:.6},");
    let _ = writeln!(json, "  \"model_vs_sim_speedup\": {ratio:.1},");
    if let Some(rows) = &thread_sweep {
        let entries: Vec<String> = rows
            .iter()
            .map(|&(t, rate, efficiency)| {
                format!(
                    "{{\"threads\": {t}, \"evals_per_s\": {rate:.1}, \"efficiency\": {efficiency:.3}}}"
                )
            })
            .collect();
        let _ = writeln!(json, "  \"thread_sweep\": [{}],", entries.join(", "));
        // No multi-thread rows on a 1-core host: report perfect
        // efficiency so the field stays present while the scaling gate
        // (armed only when `threads` > 1) stays quiet.
        let best =
            rows.iter().filter(|&&(t, ..)| t > 1).map(|&(_, _, e)| e).fold(f64::NAN, f64::max);
        let best = if best.is_nan() { 1.0 } else { best };
        let _ = writeln!(json, "  \"thread_sweep_best_efficiency\": {best:.3},");
    }
    json.push_str("  \"trajectory\": [\n");
    for (i, (size, per_s)) in trajectory.iter().enumerate() {
        let comma = if i + 1 < trajectory.len() { "," } else { "" };
        let _ =
            writeln!(json, "    {{\"batch_size\": {size}, \"evals_per_s\": {per_s:.1}}}{comma}");
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_dse.json", &json) {
        Ok(()) => println!("\nwrote BENCH_dse.json"),
        Err(e) => eprintln!("\ncould not write BENCH_dse.json: {e}"),
    }
}
