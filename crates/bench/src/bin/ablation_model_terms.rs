//! Ablation study: which modelling terms earn the Fig. 3 accuracy?
//!
//! DESIGN.md calls out three instantiation choices beyond the paper's
//! bare equations: counting the physical-layer framing bytes in the
//! radio energy, counting the acknowledgement traffic (`Ψc→n`'s ACK
//! share), and counting the beacon reception. This binary re-evaluates
//! the Fig. 3 sweep with each term removed and reports how far the
//! estimate drifts from the simulator — justifying each design choice.
//!
//! Run: `cargo run --release -p wbsn-bench --bin ablation_model_terms`

use wbsn_bench::{header, percent_error, row, ErrorSummary};
use wbsn_model::evaluate::{NodeConfig, WbsnModel};
use wbsn_model::ieee802154::{Ieee802154Config, Ieee802154Mac};
use wbsn_model::mac::MacModel;
use wbsn_model::shimmer::{self, CompressionKind};
use wbsn_model::soa::{FullEvalOut, SoaScratch};
use wbsn_model::space::DesignPoint;
use wbsn_model::units::{ByteRate, Hertz, Seconds};
use wbsn_sim::engine::NetworkBuilder;

/// Wraps the 802.15.4 MAC model with selected terms suppressed.
struct AblatedMac {
    inner: Ieee802154Mac,
    drop_phy: bool,
    drop_acks: bool,
    drop_beacons: bool,
}

impl MacModel for AblatedMac {
    fn data_overhead(&self, phi_out: ByteRate) -> ByteRate {
        self.inner.data_overhead(phi_out)
    }

    fn control_to_node(&self, phi_out: ByteRate) -> ByteRate {
        match (self.drop_acks, self.drop_beacons) {
            (false, false) => self.inner.control_to_node(phi_out),
            (true, false) => {
                // Keep beacons only: control traffic at zero data rate.
                self.inner.control_to_node(ByteRate::zero())
            }
            (false, true) => {
                // Keep ACKs only: subtract the zero-rate (beacon) part.
                self.inner.control_to_node(phi_out) - self.inner.control_to_node(ByteRate::zero())
            }
            (true, true) => ByteRate::zero(),
        }
    }

    fn control_from_node(&self, phi_out: ByteRate) -> ByteRate {
        self.inner.control_from_node(phi_out)
    }

    fn timing_overhead(&self) -> Seconds {
        self.inner.timing_overhead()
    }

    fn base_time_unit(&self) -> Seconds {
        self.inner.base_time_unit()
    }

    fn allocatable_time(&self) -> Seconds {
        self.inner.allocatable_time()
    }

    fn tx_time(&self, phi_out: ByteRate) -> Seconds {
        self.inner.tx_time(phi_out)
    }

    fn phy_overhead(&self, phi_out: ByteRate) -> ByteRate {
        if self.drop_phy {
            ByteRate::zero()
        } else {
            self.inner.phy_overhead(phi_out)
        }
    }
}

fn main() {
    let mac_cfg = Ieee802154Config::new(114, 6, 6).expect("valid");
    let node_model = shimmer::node_model();
    let phi_in = node_model.input_rate();

    let variants: [(&str, bool, bool, bool); 4] = [
        ("full model (as shipped)", false, false, false),
        ("without PHY framing bytes", true, false, false),
        ("without acknowledgement RX", false, true, false),
        ("without beacon RX", false, false, true),
    ];

    println!("# Ablation — contribution of radio-energy terms to Fig. 3 accuracy\n");
    header(&["variant", "avg node error %", "max node error %"]);

    for (name, drop_phy, drop_acks, drop_beacons) in variants {
        let mut errors = ErrorSummary::new();
        for kind in [CompressionKind::Dwt, CompressionKind::Cs] {
            for f_mhz in [1.0, 8.0] {
                for cr in [0.17, 0.23, 0.32, 0.38] {
                    let cfg = NodeConfig::new(kind, cr, Hertz::from_mhz(f_mhz));
                    let nodes = vec![cfg; 6];
                    // Model estimate with the ablated MAC.
                    let mac = AblatedMac {
                        inner: Ieee802154Mac::new(mac_cfg, 6),
                        drop_phy,
                        drop_acks,
                        drop_beacons,
                    };
                    let Ok(app) = kind.app(cr) else {
                        continue;
                    };
                    let Ok(breakdown) = node_model.energy_per_second(app.as_ref(), cfg.f_mcu, &mac)
                    else {
                        continue; // DWT at 1 MHz: skip, as Fig. 3 does
                    };
                    let _ = phi_in;
                    // Reference: the simulator.
                    let report = NetworkBuilder::new(mac_cfg, nodes)
                        .duration_s(60.0)
                        .seed(2012)
                        .build()
                        .expect("feasible")
                        .run();
                    let sim = report.nodes[0].energy.total_mj_s();
                    errors.record(percent_error(breakdown.total().mj_per_s(), sim));
                }
            }
        }
        row(&[name.to_string(), format!("{:.2}", errors.mean()), format!("{:.2}", errors.max())]);
    }

    println!("\nreading: every dropped term degrades accuracy, with beacon reception the");
    println!("largest single contributor at low data rates — the terms are not redundant.");
    println!("(the full model's residual error is the Fig. 3 abstraction error, <= ~1.7 %)");

    // Second ablation: the Eq. 8 balance term ϑ. The dominant imbalance
    // in the case study is the DWT/CS asymmetry itself: a DWT node draws
    // ~4.1 mJ/s, a CS node ~1.7 mJ/s, so the mixed network is inherently
    // unbalanced — exactly the "heavily optimized nodes alternated to
    // other nodes with an insufficient lifetime" the paper warns about.
    //
    // This sweep runs through the full-evaluation batch kernel; ϑ only
    // scales the final Eq. 8 combination, so one warm `SoaScratch`
    // serves every ϑ variant without re-interning. (The MAC-term
    // ablation above cannot: `AblatedMac` is a custom `MacModel` the
    // kernel's IEEE-802.15.4-keyed tables cannot intern.)
    println!("\n# Ablation — Eq. 8 balance weight ϑ (mixed DWT/CS vs homogeneous CS)\n");
    header(&["ϑ", "Enet mixed 3+3 [mJ/s]", "Enet all-CS [mJ/s]", "imbalance surfaced %"]);
    let mac_cfg = Ieee802154Config::new(114, 6, 6).expect("valid");
    let mixed = wbsn_model::evaluate::half_dwt_half_cs(6, 0.27, Hertz::from_mhz(8.0));
    let homogeneous = [NodeConfig::new(CompressionKind::Cs, 0.27, Hertz::from_mhz(8.0)); 6];
    let points = [
        DesignPoint { mac: mac_cfg, nodes: mixed.iter().copied().collect() },
        DesignPoint { mac: mac_cfg, nodes: homogeneous.iter().copied().collect() },
    ];
    let mut scratch = SoaScratch::new();
    let mut out = FullEvalOut::new();
    let energies = |out: &FullEvalOut| -> (f64, f64) {
        let mixed = out.outcomes()[0].as_ref().expect("ok").energy;
        let homogeneous = out.outcomes()[1].as_ref().expect("ok").energy;
        (mixed, homogeneous)
    };
    WbsnModel::shimmer().with_theta(0.0).evaluate_batch_full(&points, &mut scratch, &mut out);
    let (mean_mixed, _) = energies(&out);
    for theta in [0.0, 0.5, 1.0, 2.0] {
        let model = WbsnModel::shimmer().with_theta(theta);
        model.evaluate_batch_full(&points, &mut scratch, &mut out);
        let (e_mixed, e_homog) = energies(&out);
        row(&[
            format!("{theta:.1}"),
            format!("{e_mixed:.3}"),
            format!("{e_homog:.3}"),
            format!("{:+.1}", (e_mixed / mean_mixed - 1.0) * 100.0),
        ]);
    }
    println!("\nreading: the homogeneous network's metric is ϑ-invariant (zero spread);");
    println!("the mixed network pays up to ~45 % on top of its mean — with ϑ = 0 the");
    println!("DSE would never see the lifetime imbalance the paper's Eq. 8 penalizes.");
}
