//! Model-vs-sim fidelity sweep over the scenario families.
//!
//! Samples every [`wbsn_bench::fidelity`] family, prints the measured
//! per-family error envelope, asserts the shared `MIN_*` floors, and
//! merges the per-family `fidelity_*` scores into `BENCH_dse.json` so
//! `bench_gate` floor-gates them across PRs (the same merge idiom as
//! `serve_throughput`: every non-fidelity field of the document is
//! preserved).
//!
//! Gated fields, three per family (all higher-is-better absolute
//! floors — the measurements are fully deterministic, so there is no
//! noise to tolerance-band):
//! * `fidelity_energy_<family>` — worst-node energy agreement percent;
//! * `fidelity_delay_<family>` — minimum Eq. 9 bound headroom factor;
//! * `fidelity_prd_<family>` — PRD margin in PRD points.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fidelity_sweep`
//! Deep sweep: `FIDELITY_FULL=1` triples the per-family sample count
//! (floors still assert; the goldens are checked by the tier-1 test
//! suite at the fixed tier-1 count, not here).

use std::fmt::Write as _;
use wbsn_bench::fidelity::{
    gate_field, measure_all, render_envelopes, sample_count, BASE_SEED, MIN_DELAY_HEADROOM,
    MIN_DELAY_TIGHTNESS, MIN_ENERGY_AGREEMENT_PCT, MIN_PRD_MARGIN,
};

/// Replaces the `fidelity_*` lines of an existing `BENCH_dse.json`,
/// preserving every other field; starts a fresh document when none
/// exists (the `serve_throughput` merge idiom).
fn merge_into_bench_json(doc: Option<&str>, fidelity_lines: &str) -> String {
    match doc {
        Some(doc) if doc.trim_start().starts_with('{') => {
            let mut out = String::with_capacity(doc.len() + fidelity_lines.len());
            let mut inserted = false;
            for line in doc.lines() {
                if line.trim_start().starts_with("\"fidelity_") {
                    continue; // stale fidelity fields from a previous run
                }
                out.push_str(line);
                out.push('\n');
                if !inserted && line.trim_end().ends_with('{') {
                    out.push_str(fidelity_lines);
                    inserted = true;
                }
            }
            out
        }
        _ => format!("{{\n{fidelity_lines}  \"bench\": \"fidelity_sweep\"\n}}\n"),
    }
}

fn main() {
    let n = sample_count();
    println!("# model-vs-sim fidelity envelope ({n} scenarios/family, seeds {BASE_SEED}..)\n");

    let envelopes = measure_all(n, BASE_SEED);
    print!("{}", render_envelopes(&envelopes));

    let mut fidelity_lines = String::new();
    let mut failures = 0usize;
    println!();
    for e in &envelopes {
        for (metric, value, floor) in [
            ("energy", e.energy_agreement_pct(), MIN_ENERGY_AGREEMENT_PCT),
            ("delay", e.delay_headroom(), MIN_DELAY_HEADROOM),
            ("prd", e.prd_margin(), MIN_PRD_MARGIN),
        ] {
            let field = gate_field(e.family, metric);
            let verdict = if value >= floor { "ok" } else { "FAIL" };
            println!("{field}: {value:.4} (floor {floor}) {verdict}");
            if value < floor {
                failures += 1;
            }
            let _ = writeln!(fidelity_lines, "  \"{field}\": {value:.4},");
        }
        // Tightness is asserted but not gated per family: one shared
        // non-vacuity line suffices (utilization swings with topology).
        let tightness = 1.0 / e.delay_util_max;
        if tightness < MIN_DELAY_TIGHTNESS {
            println!(
                "{}: bound tightness {tightness:.4} below {MIN_DELAY_TIGHTNESS} FAIL",
                e.family
            );
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures} fidelity floor(s) violated — see the report above");

    let existing = std::fs::read_to_string("BENCH_dse.json").ok();
    let merged = merge_into_bench_json(existing.as_deref(), &fidelity_lines);
    match std::fs::write("BENCH_dse.json", &merged) {
        Ok(()) => println!("\nmerged fidelity fields into BENCH_dse.json"),
        Err(e) => eprintln!("\ncould not write BENCH_dse.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::merge_into_bench_json;

    #[test]
    fn merge_replaces_fidelity_fields_and_preserves_the_rest() {
        let doc = "{\n  \"bench\": \"dse_throughput\",\n  \
                   \"fidelity_energy_body_area_periodic\": 1.0,\n  \
                   \"batch_evals_per_s\": 2.5\n}\n";
        let merged =
            merge_into_bench_json(Some(doc), "  \"fidelity_energy_body_area_periodic\": 97.5,\n");
        assert!(merged.contains("\"fidelity_energy_body_area_periodic\": 97.5"));
        assert!(!merged.contains("\"fidelity_energy_body_area_periodic\": 1.0"));
        assert!(merged.contains("\"batch_evals_per_s\": 2.5"));
        assert!(merged.contains("\"bench\": \"dse_throughput\""));
    }

    #[test]
    fn merge_without_a_document_starts_a_fresh_one() {
        let merged = merge_into_bench_json(None, "  \"fidelity_prd_cluster_bursty\": 7.0,\n");
        assert!(merged.starts_with('{'));
        assert!(merged.contains("\"fidelity_prd_cluster_bursty\": 7.0"));
        assert!(merged.trim_end().ends_with('}'));
    }
}
