//! Figure 5 reproduction: energy/delay/PRD trade-off fronts found with
//! the proposed three-objective model, against the fronts found by a
//! state-of-the-art energy/delay model ([26]) that is blind to the
//! application-quality axis.
//!
//! Paper's result: the energy/delay model recovers only ≈7 % of the
//! trade-offs of the proposed model — it approximates the energy/delay
//! curve but misses every mid-range-PRD solution.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig5_pareto`

use wbsn_bench::{header, row};
use wbsn_dse::evaluator::{EnergyDelayEvaluator, Evaluator, ModelEvaluator};
use wbsn_dse::nsga2::{nsga2, Nsga2Config};
use wbsn_dse::objective::ObjectiveVector;
use wbsn_dse::quality::membership_in_front;
use wbsn_model::space::DesignSpace;

/// The case-study space with a finer CR grid (step 0.005) and more
/// payload/order options, matching the paper's "tens of millions of
/// configurations" resolution more closely than the default grid.
fn fine_space() -> DesignSpace {
    let mut space = DesignSpace::case_study(6);
    space.cr_values = (0..=42).map(|i| 0.17 + 0.005 * f64::from(i)).collect();
    space.payload_values = vec![30, 40, 50, 60, 70, 80, 90, 100, 114];
    space.order_pairs.clear();
    for sfo in 3u8..=9 {
        for bco in sfo..=10 {
            space.order_pairs.push((sfo, bco));
        }
    }
    space
}

fn main() {
    let space = fine_space();
    println!("# Fig. 5 — Pareto trade-offs, proposed 3-objective model vs energy/delay baseline\n");
    println!("design space cardinality: {:.3e} configurations\n", space.cardinality() as f64);

    let cfg =
        Nsga2Config { population: 200, generations: 250, seed: 2012, ..Nsga2Config::default() };
    let proposed = nsga2(&space, &ModelEvaluator::shimmer(), &cfg);
    let baseline = nsga2(&space, &EnergyDelayEvaluator::shimmer(), &cfg);

    println!(
        "proposed model  : {} Pareto points ({} evaluations, {} infeasible)",
        proposed.front.len(),
        proposed.evaluations,
        proposed.infeasible
    );
    println!(
        "energy/delay [26]: {} Pareto points ({} evaluations, {} infeasible)\n",
        baseline.front.len(),
        baseline.evaluations,
        baseline.infeasible
    );

    // Re-evaluate the baseline's configurations under the full model to
    // place them in 3-D objective space.
    let model3 = ModelEvaluator::shimmer();
    let baseline_in_3d: Vec<ObjectiveVector> =
        baseline.front.entries().iter().filter_map(|e| model3.evaluate(&e.payload)).collect();
    let proposed_objs: Vec<ObjectiveVector> = proposed.front.objectives().cloned().collect();

    let member = membership_in_front(&baseline_in_3d, &proposed_objs);
    println!(
        "fraction of baseline solutions that survive as 3-objective trade-offs: {:.1} %",
        member * 100.0
    );
    let survivors = (member * baseline_in_3d.len() as f64).round();
    println!(
        "trade-offs found by the baseline vs proposed: {} / {} = {:.1} %",
        survivors,
        proposed.front.len(),
        survivors / proposed.front.len() as f64 * 100.0
    );
    // Complementary view: how much of the proposed front does the
    // baseline actually cover?
    let covered = proposed_objs
        .iter()
        .filter(|p| baseline_in_3d.iter().any(|b| b.weakly_dominates(p)))
        .count();
    println!(
        "proposed-front points covered by the baseline: {} / {} = {:.1} %\n",
        covered,
        proposed_objs.len(),
        covered as f64 / proposed_objs.len() as f64 * 100.0
    );
    println!("paper: the energy/delay Pareto set contains only ~7 % of the proposed model's trade-offs\n");

    // The three 2-D projections of Fig. 5 (proposed model's front).
    for (title, ix, iy) in [
        ("Energy-Delay Tradeoffs [mJ/s vs s]", 0usize, 1usize),
        ("Energy-PRD Tradeoffs [mJ/s vs %]", 0, 2),
        ("PRD-Delay Tradeoffs [% vs s]", 2, 1),
    ] {
        println!("## {title}\n");
        header(&["source", "x", "y"]);
        let mut rows: Vec<(f64, f64, &str)> = proposed_objs
            .iter()
            .map(|o| (o.values()[ix], o.values()[iy], "proposed"))
            .chain(baseline_in_3d.iter().map(|o| (o.values()[ix], o.values()[iy], "baseline")))
            .collect();
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        // Print a readable subsample (every k-th point).
        let step = (rows.len() / 40).max(1);
        for (x, y, src) in rows.iter().step_by(step) {
            row(&[(*src).to_string(), format!("{x:.3}"), format!("{y:.3}")]);
        }
        println!();
    }
}
