//! Figure 5 reproduction: energy/delay/PRD trade-off fronts found with
//! the proposed three-objective model, against the fronts found by a
//! state-of-the-art energy/delay model ([26]) that is blind to the
//! application-quality axis.
//!
//! Both searches and the baseline's 3-D re-evaluation run through the
//! batch evaluation engine (the MAC-grouped `SoA` kernel under
//! `Evaluator::evaluate_batch`). The table is built by
//! [`wbsn_bench::figures::fig5_table`] and snapshotted under
//! `benchmarks/golden/` (see `crates/bench/tests/golden_figures.rs`).
//!
//! Paper's result: the energy/delay model recovers only ≈7 % of the
//! trade-offs of the proposed model — it approximates the energy/delay
//! curve but misses every mid-range-PRD solution.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig5_pareto`

fn main() {
    print!("{}", wbsn_bench::figures::fig5_table());
}
