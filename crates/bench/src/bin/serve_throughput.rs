//! Serve-layer throughput and latency: the DSE-as-a-service engine
//! under concurrent load (the serve fields tracked in `BENCH_dse.json`).
//!
//! Where `dse_throughput` measures the raw kernels, this binary
//! measures the robustness layer wrapped around them: requests flow
//! through the bounded queue, the worker pool, the warm scratch pools,
//! and the per-request bookkeeping of `wbsn-serve`. The interesting
//! questions are *how many scenario queries per second* the engine
//! sustains and *what latency a caller sees* — including everything
//! the direct `evaluate_batch` call never pays: submission, queueing,
//! response channels, and deadline checks.
//!
//! Each query evaluates one 512-point batch of the 6-node case-study
//! sweep (the same shape `dse_throughput` uses for its batch paths).
//! Closed-loop clients keep a fixed number of queries in flight; the
//! run sweeps several concurrency levels and reports per-level
//! queries/s and latency percentiles.
//!
//! Gated fields (written into `BENCH_dse.json` next to the kernel
//! fields, preserving everything else in the document):
//! * `serve_queries_per_s` — best sustained rate across the levels
//!   (higher is better);
//! * `serve_p50_ms` / `serve_p99_ms` — single-client (concurrency 1)
//!   round-trip latency percentiles (lower is better), the cleanest
//!   view of per-request overhead.
//!
//! Run: `cargo run --release -p wbsn-bench --bin serve_throughput`
//! Smoke mode (CI): `SERVE_SMOKE=1` shrinks the run to a few hundred
//! queries and skips the JSON merge.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wbsn_model::space::{DesignPoint, DesignSpace};
use wbsn_serve::{ScenarioRequest, ServeConfig, ServeEngine};

/// Concurrency levels swept: clients keeping queries in flight.
const LEVELS: [usize; 3] = [1, 4, 16];

/// One measured level: sustained rate plus latency percentiles.
struct LevelResult {
    clients: usize,
    queries: usize,
    queries_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Sorted-latency percentile (nearest-rank).
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Runs `queries` closed-loop queries across `clients` submitter
/// threads against one engine, returning rate and latency stats.
fn run_level(points: &[DesignPoint], clients: usize, queries: usize) -> LevelResult {
    let engine = ServeEngine::start(ServeConfig {
        queue_capacity: clients.max(16) * 2,
        ..ServeConfig::default()
    });
    // Warm the scratch pools and fault in the lazy interning tables so
    // the measurement sees steady state, not first-touch costs.
    for _ in 0..4 {
        engine
            .try_submit(ScenarioRequest::evaluate(points.to_vec()))
            .expect("queue empty during warmup")
            .wait()
            .expect("warmup query succeeds");
    }

    let per_client = queries.div_ceil(clients);
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let submitted = Instant::now();
                        let response = engine
                            .submit(ScenarioRequest::evaluate(points.to_vec()))
                            .expect("engine alive")
                            .wait()
                            .expect("fault-free query succeeds");
                        local.push(submitted.elapsed());
                        assert_eq!(
                            response.points_resolved,
                            points.len() as u64,
                            "every query resolves the full batch"
                        );
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    LevelResult {
        clients,
        queries: latencies.len(),
        queries_per_s: latencies.len() as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
    }
}

/// Replaces the `serve_*` lines of an existing `BENCH_dse.json` with
/// `serve_lines`, preserving every other field; starts a fresh document
/// when none exists.
fn merge_into_bench_json(doc: Option<&str>, serve_lines: &str) -> String {
    match doc {
        Some(doc) if doc.trim_start().starts_with('{') => {
            let mut out = String::with_capacity(doc.len() + serve_lines.len());
            let mut inserted = false;
            for line in doc.lines() {
                if line.trim_start().starts_with("\"serve_") {
                    continue; // stale serve fields from a previous run
                }
                out.push_str(line);
                out.push('\n');
                if !inserted && line.trim_end().ends_with('{') {
                    out.push_str(serve_lines);
                    inserted = true;
                }
            }
            out
        }
        _ => format!("{{\n{serve_lines}  \"bench\": \"serve_throughput\"\n}}\n"),
    }
}

fn main() {
    let smoke = std::env::var("SERVE_SMOKE").is_ok_and(|v| v == "1");
    let queries_per_level = if smoke { 64 } else { 2000 };

    println!("# serve-layer throughput (DSE-as-a-service)\n");
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(512);
    println!(
        "{} queries/level, {} points/query, levels {:?}{}\n",
        queries_per_level,
        points.len(),
        LEVELS,
        if smoke { " [smoke]" } else { "" }
    );

    let results: Vec<LevelResult> =
        LEVELS.iter().map(|&clients| run_level(&points, clients, queries_per_level)).collect();
    for r in &results {
        println!(
            "clients {:>2}: {:>9.0} queries/s  ({:>8.0} evals/s)  p50 {:.3} ms  p99 {:.3} ms  \
             ({} queries)",
            r.clients,
            r.queries_per_s,
            r.queries_per_s * points.len() as f64,
            r.p50_ms,
            r.p99_ms,
            r.queries
        );
    }

    let best_rate = results.iter().map(|r| r.queries_per_s).fold(f64::NEG_INFINITY, f64::max);
    let single = &results[0];
    assert_eq!(single.clients, 1, "latency percentiles come from the single-client level");
    println!(
        "\nbest sustained rate: {best_rate:.0} queries/s; \
         single-client p50 {:.3} ms, p99 {:.3} ms",
        single.p50_ms, single.p99_ms
    );

    if smoke {
        println!("\nSERVE_SMOKE set — skipping the BENCH_dse.json merge");
        return;
    }

    let mut serve_lines = String::new();
    let _ = writeln!(serve_lines, "  \"serve_queries_per_s\": {best_rate:.1},");
    let _ = writeln!(serve_lines, "  \"serve_p50_ms\": {:.4},", single.p50_ms);
    let _ = writeln!(serve_lines, "  \"serve_p99_ms\": {:.4},", single.p99_ms);
    let levels: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\": {}, \"queries_per_s\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                r.clients, r.queries_per_s, r.p50_ms, r.p99_ms
            )
        })
        .collect();
    let _ = writeln!(serve_lines, "  \"serve_levels\": [{}],", levels.join(", "));

    let existing = std::fs::read_to_string("BENCH_dse.json").ok();
    let merged = merge_into_bench_json(existing.as_deref(), &serve_lines);
    match std::fs::write("BENCH_dse.json", &merged) {
        Ok(()) => println!("\nmerged serve fields into BENCH_dse.json"),
        Err(e) => eprintln!("\ncould not write BENCH_dse.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::{merge_into_bench_json, percentile_ms};
    use std::time::Duration;

    #[test]
    fn merge_replaces_serve_fields_and_preserves_the_rest() {
        let doc = "{\n  \"bench\": \"dse_throughput\",\n  \"serve_queries_per_s\": 1.0,\n  \
                   \"serve_levels\": [{\"clients\": 1}],\n  \"batch_evals_per_s\": 2.5\n}\n";
        let merged = merge_into_bench_json(Some(doc), "  \"serve_queries_per_s\": 9.0,\n");
        assert!(merged.contains("\"serve_queries_per_s\": 9.0"));
        assert!(!merged.contains("\"serve_queries_per_s\": 1.0"));
        assert!(!merged.contains("\"serve_levels\": [{\"clients\": 1}]"));
        assert!(merged.contains("\"batch_evals_per_s\": 2.5"));
        assert!(merged.contains("\"bench\": \"dse_throughput\""));
    }

    #[test]
    fn merge_without_a_document_starts_a_fresh_one() {
        let merged = merge_into_bench_json(None, "  \"serve_p50_ms\": 0.5,\n");
        assert!(merged.starts_with('{'));
        assert!(merged.contains("\"serve_p50_ms\": 0.5"));
        assert!(merged.trim_end().ends_with('}'));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile_ms(&sorted, 50.0) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 99.0) - 99.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 100.0) - 100.0).abs() < 1e-9);
    }
}
