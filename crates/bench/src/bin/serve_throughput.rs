//! Serve-layer throughput and latency: the DSE-as-a-service engine
//! under concurrent load (the serve fields tracked in `BENCH_dse.json`).
//!
//! Where `dse_throughput` measures the raw kernels, this binary
//! measures the robustness layer wrapped around them: requests flow
//! through the bounded queue, the worker pool, the warm scratch pools,
//! and the per-request bookkeeping of `wbsn-serve`. The interesting
//! questions are *how many scenario queries per second* the engine
//! sustains and *what latency a caller sees* — including everything
//! the direct `evaluate_batch` call never pays: submission, queueing,
//! response channels, and deadline checks.
//!
//! Each query evaluates one 512-point batch of the 6-node case-study
//! sweep (the same shape `dse_throughput` uses for its batch paths).
//! Closed-loop clients keep a fixed number of queries in flight; the
//! run sweeps several concurrency levels and reports per-level
//! queries/s and latency percentiles.
//!
//! A second, *small-query* mode measures the cross-request coalescer:
//! 16- and 64-point queries at concurrency 4 and 16 against a single
//! pinned worker (the 1-core runner profile), once with coalescing off
//! and once with it on, over a pool of distinct design points so the
//! memo cannot flatten the comparison. The on/off pair differs in
//! nothing but `coalesce_max_points`, so the ratio isolates what
//! shared `SoA` super-batches buy over per-request turns.
//!
//! Gated fields (written into `BENCH_dse.json` next to the kernel
//! fields, preserving everything else in the document):
//! * `serve_queries_per_s` — best sustained rate across the levels
//!   (higher is better);
//! * `serve_p50_ms` / `serve_p99_ms` — single-client (concurrency 1)
//!   round-trip latency percentiles (lower is better), the cleanest
//!   view of per-request overhead;
//! * `serve_small_qps_16pt` — 16-point-query rate at concurrency 16
//!   with coalescing on (higher is better);
//! * `serve_small_p99_ms_16pt` — its p99 round-trip latency (lower is
//!   better);
//! * `serve_small_coalesce_ratio_16pt` — coalescing-on over
//!   coalescing-off rate at that level (the tentpole's headline).
//!
//! Run: `cargo run --release -p wbsn-bench --bin serve_throughput`
//! Smoke mode (CI): `SERVE_SMOKE=1` shrinks the run to a few hundred
//! queries and skips the JSON merge.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wbsn_model::space::{DesignPoint, DesignSpace};
use wbsn_serve::{ScenarioRequest, ServeConfig, ServeEngine};

/// Concurrency levels swept: clients keeping queries in flight.
const LEVELS: [usize; 3] = [1, 4, 16];

/// Small-query mode: points per query (both well under the coalescing
/// threshold) and the concurrency levels that make sharing possible.
const SMALL_SIZES: [usize; 2] = [16, 64];
const SMALL_LEVELS: [usize; 2] = [4, 16];

/// Coalescing threshold for the small-query runs: large enough that
/// both small shapes are eligible, far below the 512-point big-query
/// shape (which must keep bypassing the former).
const SMALL_COALESCE_MAX_POINTS: usize = 128;

/// Admission window for the small-query runs. Closed-loop clients
/// resubmit within a few microseconds of a scatter, so a short window
/// merges everything already queued without leaving the lone worker
/// idle waiting for stragglers the way the 200 µs default would.
const SMALL_COALESCE_WAIT: Duration = Duration::from_micros(30);

/// One measured level: sustained rate plus latency percentiles.
struct LevelResult {
    clients: usize,
    queries: usize,
    queries_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Sorted-latency percentile (nearest-rank).
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// The engine configuration for one measured level: big-query levels
/// run the stock engine; small-query levels flip the coalescer on or
/// off so the two runs differ in nothing but batch sharing.
fn level_config(clients: usize, coalesce: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: clients.max(16) * 2,
        coalesce_max_points: if coalesce { SMALL_COALESCE_MAX_POINTS } else { 0 },
        coalesce_max_wait: SMALL_COALESCE_WAIT,
        ..ServeConfig::default()
    }
}

/// Runs `queries` closed-loop queries across `clients` submitter
/// threads against one engine, returning rate and latency stats.
fn run_level(
    points: &[DesignPoint],
    clients: usize,
    queries: usize,
    cfg: ServeConfig,
) -> LevelResult {
    let engine = ServeEngine::start(cfg);
    // Warm the scratch pools and fault in the lazy interning tables so
    // the measurement sees steady state, not first-touch costs.
    for _ in 0..4 {
        engine
            .try_submit(ScenarioRequest::evaluate(points.to_vec()))
            .expect("queue empty during warmup")
            .wait()
            .expect("warmup query succeeds");
    }

    let per_client = queries.div_ceil(clients);
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let submitted = Instant::now();
                        let response = engine
                            .submit(ScenarioRequest::evaluate(points.to_vec()))
                            .expect("engine alive")
                            .wait()
                            .expect("fault-free query succeeds");
                        local.push(submitted.elapsed());
                        assert_eq!(
                            response.points_resolved,
                            points.len() as u64,
                            "every query resolves the full batch"
                        );
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    LevelResult {
        clients,
        queries: latencies.len(),
        queries_per_s: latencies.len() as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
    }
}

/// One small-query level measured both ways: the coalescing-off and
/// coalescing-on runs plus their rate ratio.
struct SmallRow {
    size: usize,
    off: LevelResult,
    on: LevelResult,
    ratio: f64,
}

/// Runs the small-query closed-loop load: `clients` threads each keep
/// one `size`-point query in flight against a single pinned worker.
/// Every query takes a fresh window of the pool (per-client disjoint
/// regions), so the work set is identical — and the memo trajectory
/// equivalent — between the coalescing-off and -on runs.
fn run_small_level(
    pool: &[DesignPoint],
    size: usize,
    clients: usize,
    queries: usize,
    coalesce: bool,
) -> LevelResult {
    // One worker regardless of host parallelism: the gate is defined on
    // the 1-core runner, and pinning makes the contention that gives the
    // coalescer its shot reproducible on wider machines too.
    let engine = ServeEngine::start(ServeConfig { workers: 1, ..level_config(clients, coalesce) });
    for _ in 0..4 {
        engine
            .try_submit(ScenarioRequest::evaluate(pool[pool.len() - size..].to_vec()))
            .expect("queue empty during warmup")
            .wait()
            .expect("warmup query succeeds");
    }

    let per_client = queries.div_ceil(clients);
    let engine = &engine;
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let start = ((c * per_client + i) * size) % (pool.len() - size + 1);
                        let query = pool[start..start + size].to_vec();
                        let submitted = Instant::now();
                        let response = engine
                            .submit(ScenarioRequest::evaluate(query))
                            .expect("engine alive")
                            .wait()
                            .expect("fault-free query succeeds");
                        local.push(submitted.elapsed());
                        assert_eq!(
                            response.points_resolved, size as u64,
                            "every small query resolves its full slice"
                        );
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    LevelResult {
        clients,
        queries: latencies.len(),
        queries_per_s: latencies.len() as f64 / elapsed,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
    }
}

/// Replaces the `serve_*` lines of an existing `BENCH_dse.json` with
/// `serve_lines`, preserving every other field; starts a fresh document
/// when none exists.
fn merge_into_bench_json(doc: Option<&str>, serve_lines: &str) -> String {
    match doc {
        Some(doc) if doc.trim_start().starts_with('{') => {
            let mut out = String::with_capacity(doc.len() + serve_lines.len());
            let mut inserted = false;
            for line in doc.lines() {
                if line.trim_start().starts_with("\"serve_") {
                    continue; // stale serve fields from a previous run
                }
                out.push_str(line);
                out.push('\n');
                if !inserted && line.trim_end().ends_with('{') {
                    out.push_str(serve_lines);
                    inserted = true;
                }
            }
            out
        }
        _ => format!("{{\n{serve_lines}  \"bench\": \"serve_throughput\"\n}}\n"),
    }
}

fn main() {
    let smoke = std::env::var("SERVE_SMOKE").is_ok_and(|v| v == "1");
    let queries_per_level = if smoke { 64 } else { 2000 };

    println!("# serve-layer throughput (DSE-as-a-service)\n");
    let space = DesignSpace::case_study(6);
    let points = space.sample_sweep(512);
    println!(
        "{} queries/level, {} points/query, levels {:?}{}\n",
        queries_per_level,
        points.len(),
        LEVELS,
        if smoke { " [smoke]" } else { "" }
    );

    let results: Vec<LevelResult> = LEVELS
        .iter()
        .map(|&clients| {
            run_level(&points, clients, queries_per_level, level_config(clients, false))
        })
        .collect();
    for r in &results {
        println!(
            "clients {:>2}: {:>9.0} queries/s  ({:>8.0} evals/s)  p50 {:.3} ms  p99 {:.3} ms  \
             ({} queries)",
            r.clients,
            r.queries_per_s,
            r.queries_per_s * points.len() as f64,
            r.p50_ms,
            r.p99_ms,
            r.queries
        );
    }

    let best_rate = results.iter().map(|r| r.queries_per_s).fold(f64::NEG_INFINITY, f64::max);
    let single = &results[0];
    assert_eq!(single.clients, 1, "latency percentiles come from the single-client level");
    println!(
        "\nbest sustained rate: {best_rate:.0} queries/s; \
         single-client p50 {:.3} ms, p99 {:.3} ms",
        single.p50_ms, single.p99_ms
    );

    let small_queries = if smoke { 48 } else { 2000 };
    println!(
        "\n# small-query coalescing: sizes {SMALL_SIZES:?}, levels {SMALL_LEVELS:?}, \
         {small_queries} queries/run, 1 worker\n"
    );
    let pool = space.sample_sweep(8192);
    let mut small: Vec<SmallRow> = Vec::new();
    for &size in &SMALL_SIZES {
        for &clients in &SMALL_LEVELS {
            let off = run_small_level(&pool, size, clients, small_queries, false);
            let on = run_small_level(&pool, size, clients, small_queries, true);
            let ratio = on.queries_per_s / off.queries_per_s;
            println!(
                "{size:>2} pts, clients {clients:>2}: off {:>8.0} q/s (p99 {:.3} ms)  \
                 on {:>8.0} q/s (p99 {:.3} ms)  ratio {ratio:.2}x",
                off.queries_per_s, off.p99_ms, on.queries_per_s, on.p99_ms
            );
            small.push(SmallRow { size, off, on, ratio });
        }
    }
    let headline = small
        .iter()
        .find(|r| r.size == 16 && r.on.clients == 16)
        .expect("the gated 16-point concurrency-16 level always runs");
    println!(
        "\n16-pt @ 16 clients: {:.0} q/s coalescing on, ratio {:.2}x over off",
        headline.on.queries_per_s, headline.ratio
    );

    if smoke {
        println!("\nSERVE_SMOKE set — skipping the BENCH_dse.json merge");
        return;
    }

    let mut serve_lines = String::new();
    let _ = writeln!(serve_lines, "  \"serve_queries_per_s\": {best_rate:.1},");
    let _ = writeln!(serve_lines, "  \"serve_p50_ms\": {:.4},", single.p50_ms);
    let _ = writeln!(serve_lines, "  \"serve_p99_ms\": {:.4},", single.p99_ms);
    let levels: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\": {}, \"queries_per_s\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                r.clients, r.queries_per_s, r.p50_ms, r.p99_ms
            )
        })
        .collect();
    let _ = writeln!(serve_lines, "  \"serve_levels\": [{}],", levels.join(", "));
    let _ = writeln!(serve_lines, "  \"serve_small_qps_16pt\": {:.1},", headline.on.queries_per_s);
    let _ = writeln!(serve_lines, "  \"serve_small_p99_ms_16pt\": {:.4},", headline.on.p99_ms);
    let _ = writeln!(serve_lines, "  \"serve_small_coalesce_ratio_16pt\": {:.3},", headline.ratio);
    let small_levels: Vec<String> = small
        .iter()
        .map(|r| {
            format!(
                "{{\"points\": {}, \"clients\": {}, \"qps_off\": {:.1}, \"qps_on\": {:.1}, \
                 \"p99_ms_on\": {:.4}, \"ratio\": {:.3}}}",
                r.size, r.on.clients, r.off.queries_per_s, r.on.queries_per_s, r.on.p99_ms, r.ratio
            )
        })
        .collect();
    let _ = writeln!(serve_lines, "  \"serve_small_levels\": [{}],", small_levels.join(", "));

    let existing = std::fs::read_to_string("BENCH_dse.json").ok();
    let merged = merge_into_bench_json(existing.as_deref(), &serve_lines);
    match std::fs::write("BENCH_dse.json", &merged) {
        Ok(()) => println!("\nmerged serve fields into BENCH_dse.json"),
        Err(e) => eprintln!("\ncould not write BENCH_dse.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::{merge_into_bench_json, percentile_ms};
    use std::time::Duration;

    #[test]
    fn merge_replaces_serve_fields_and_preserves_the_rest() {
        let doc = "{\n  \"bench\": \"dse_throughput\",\n  \"serve_queries_per_s\": 1.0,\n  \
                   \"serve_levels\": [{\"clients\": 1}],\n  \"batch_evals_per_s\": 2.5\n}\n";
        let merged = merge_into_bench_json(Some(doc), "  \"serve_queries_per_s\": 9.0,\n");
        assert!(merged.contains("\"serve_queries_per_s\": 9.0"));
        assert!(!merged.contains("\"serve_queries_per_s\": 1.0"));
        assert!(!merged.contains("\"serve_levels\": [{\"clients\": 1}]"));
        assert!(merged.contains("\"batch_evals_per_s\": 2.5"));
        assert!(merged.contains("\"bench\": \"dse_throughput\""));
    }

    #[test]
    fn merge_without_a_document_starts_a_fresh_one() {
        let merged = merge_into_bench_json(None, "  \"serve_p50_ms\": 0.5,\n");
        assert!(merged.starts_with('{'));
        assert!(merged.contains("\"serve_p50_ms\": 0.5"));
        assert!(merged.trim_end().ends_with('}'));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile_ms(&sorted, 50.0) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 99.0) - 99.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 100.0) - 100.0).abs() < 1e-9);
    }
}
