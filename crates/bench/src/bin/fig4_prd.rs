//! Figure 4 reproduction: application quality (PRD) as estimated by the
//! model vs the PRD measured by running the *real* DWT and CS codecs on
//! synthetic ECG and reconstructing.
//!
//! The estimates run through the full-evaluation batch kernel
//! (`WbsnModel::evaluate_batch_full`), whose per-node PRD lane evaluates
//! the model's fifth-order `P5(CR)` polynomials — one batch covers both
//! applications' CR sweeps. The table is built by
//! [`wbsn_bench::figures::fig4_table`] and snapshotted under
//! `benchmarks/golden/` (see `crates/bench/tests/golden_figures.rs`).
//!
//! Paper's result: estimation error 0.92 % (CS) / 0.46 % (DWT); both
//! curves decrease with CR; DWT sits well below CS.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig4_prd`

fn main() {
    print!("{}", wbsn_bench::figures::fig4_table());
}
