//! Figure 4 reproduction: application quality (PRD) as estimated by the
//! model's fifth-order polynomials vs. the PRD measured by running the
//! *real* DWT and CS codecs on synthetic ECG and reconstructing.
//!
//! Paper's result: estimation error 0.92 % (CS) / 0.46 % (DWT); both
//! curves decrease with CR; DWT sits well below CS.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig4_prd`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wbsn_bench::{header, row, ErrorSummary};
use wbsn_dsp::compress::{measure_prd, Codec, CsCodec, DwtCodec};
use wbsn_dsp::ecg::EcgGenerator;
use wbsn_model::shimmer::{cs_prd_poly, dwt_prd_poly};

const BLOCK: usize = 256;
const SECONDS: usize = 64;
/// Held-out seed: different recordings than the ones `fit_prd` used.
const SIGNAL_SEED: u64 = 777;

fn main() {
    println!("# Fig. 4 — PRD [%], polynomial model vs real codec measurement\n");
    let mut rng = StdRng::seed_from_u64(SIGNAL_SEED);
    let signal = EcgGenerator::default().generate(250 * SECONDS, &mut rng);

    header(&[
        "app",
        "CR",
        "estimated PRD %",
        "measured PRD %",
        "abs error [PRD pts]",
        "rel error %",
    ]);
    for (name, codec, poly) in [
        ("DWT", Codec::Dwt(DwtCodec::default()), dwt_prd_poly()),
        ("CS", Codec::Cs(CsCodec::default()), cs_prd_poly()),
    ] {
        let mut errors = ErrorSummary::new();
        let mut abs_errors = ErrorSummary::new();
        let mut cr = 0.17;
        let mut last_measured = f64::INFINITY;
        while cr <= 0.38 + 1e-9 {
            let mut crng = StdRng::seed_from_u64(SIGNAL_SEED ^ 0xBEEF);
            let report = measure_prd(&codec, &signal, BLOCK, cr, &mut crng)
                .expect("block length divides signal");
            let estimated = poly.eval(cr);
            let abs = (estimated - report.prd).abs();
            let rel = abs / report.prd * 100.0;
            errors.record(rel);
            abs_errors.record(abs);
            row(&[
                name.to_string(),
                format!("{cr:.2}"),
                format!("{estimated:.2}"),
                format!("{:.2}", report.prd),
                format!("{abs:.2}"),
                format!("{rel:.1}"),
            ]);
            assert!(
                report.prd < last_measured + 1.5,
                "PRD should decrease (roughly monotonically) with CR"
            );
            last_measured = report.prd;
            cr += 0.03;
        }
        println!(
            "\n{name}: mean abs error {:.2} PRD pts | mean rel error {:.1} % | max rel {:.1} %\n",
            abs_errors.mean(),
            errors.mean(),
            errors.max()
        );
    }
    println!("paper: error 0.46 % (DWT) / 0.92 % (CS) against the measured PRD");
}
