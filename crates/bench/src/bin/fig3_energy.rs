//! Figure 3 reproduction: per-node energy consumption, analytical model
//! vs. "real" data (here: the packet-level simulator with the
//! cycle-approximate node harness), across the paper's eight
//! configurations — `fµC ∈ {1, 8} MHz × CR ∈ {0.17, 0.23, 0.32, 0.38}` —
//! for both DWT and CS applications.
//!
//! The model side runs through the full-evaluation batch kernel
//! (`WbsnModel::evaluate_batch_full`): one batch covers the whole sweep,
//! bit-identical to the scalar `evaluate()` per node. The table is built
//! by [`wbsn_bench::figures::fig3_table`] and snapshotted under
//! `benchmarks/golden/` (see `crates/bench/tests/golden_figures.rs`).
//!
//! Paper's result: average error 0.88 % (CS) / 0.13 % (DWT), maximum
//! ≤ 1.74 %; the model predicts DWT cannot run at 1 MHz (duty > 100 %).
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig3_energy`

fn main() {
    print!("{}", wbsn_bench::figures::fig3_table());
}
