//! Figure 3 reproduction: per-node energy consumption, analytical model
//! vs. "real" data (here: the packet-level simulator with the
//! cycle-approximate node harness), across the paper's eight
//! configurations — `fµC ∈ {1, 8} MHz × CR ∈ {0.17, 0.23, 0.32, 0.38}` —
//! for both DWT and CS applications.
//!
//! Paper's result: average error 0.88 % (CS) / 0.13 % (DWT), maximum
//! ≤ 1.74 %; the model predicts DWT cannot run at 1 MHz (duty > 100 %).
//!
//! Run: `cargo run --release -p wbsn-bench --bin fig3_energy`

use wbsn_bench::{header, percent_error, row, ErrorSummary};
use wbsn_model::evaluate::{NodeConfig, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::shimmer::CompressionKind;
use wbsn_model::units::Hertz;
use wbsn_model::ModelError;
use wbsn_sim::engine::NetworkBuilder;

const SIM_SECONDS: f64 = 60.0;

fn main() {
    let mac = Ieee802154Config::new(114, 6, 6).expect("case-study MAC config");
    let model = WbsnModel::shimmer();

    println!("# Fig. 3 — node energy consumption per second [mJ/s], model vs simulation\n");
    header(&[
        "app",
        "fµC",
        "CR",
        "model [mJ/s]",
        "sim [mJ/s]",
        "error %",
        "model sensor/mcu/mem/radio",
        "sim sensor/mcu/mem/radio",
    ]);

    let mut summaries =
        [(CompressionKind::Cs, ErrorSummary::new()), (CompressionKind::Dwt, ErrorSummary::new())];
    for kind in [CompressionKind::Dwt, CompressionKind::Cs] {
        for f_mhz in [1.0, 8.0] {
            for cr in [0.17, 0.23, 0.32, 0.38] {
                let nodes = vec![NodeConfig::new(kind, cr, Hertz::from_mhz(f_mhz)); 6];
                let estimate = model.evaluate(&mac, &nodes);
                let measured = NetworkBuilder::new(mac, nodes)
                    .duration_s(SIM_SECONDS)
                    .seed(2012)
                    .build()
                    .expect("GTS assignment feasible for these rates")
                    .run();
                let sim_node = &measured.nodes[0];
                match estimate {
                    Ok(eval) => {
                        let m = &eval.per_node[0].energy;
                        let model_total = m.total().mj_per_s();
                        let sim_total = sim_node.energy.total_mj_s();
                        let err = percent_error(model_total, sim_total);
                        for (k, s) in &mut summaries {
                            if *k == kind {
                                s.record(err);
                            }
                        }
                        row(&[
                            kind.label().to_string(),
                            format!("{f_mhz} MHz"),
                            format!("{cr:.2}"),
                            format!("{model_total:.3}"),
                            format!("{sim_total:.3}"),
                            format!("{err:.2}"),
                            format!(
                                "{:.2}/{:.2}/{:.2}/{:.2}",
                                m.sensor.mj_per_s(),
                                m.mcu.mj_per_s(),
                                m.memory.mj_per_s(),
                                m.radio.mj_per_s()
                            ),
                            format!(
                                "{:.2}/{:.2}/{:.2}/{:.2}",
                                sim_node.energy.sensor_mj_s,
                                sim_node.energy.mcu_mj_s,
                                sim_node.energy.memory_mj_s,
                                sim_node.energy.radio_mj_s
                            ),
                        ]);
                    }
                    Err(ModelError::DutyCycleExceeded { duty, .. }) => {
                        row(&[
                            kind.label().to_string(),
                            format!("{f_mhz} MHz"),
                            format!("{cr:.2}"),
                            format!("INFEASIBLE (duty {:.0} %)", duty * 100.0),
                            if sim_node.cpu_overrun { "CPU OVERRUN".into() } else { "?".into() },
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                        assert!(
                            sim_node.cpu_overrun,
                            "simulator must confirm the model's infeasibility verdict"
                        );
                    }
                    Err(e) => panic!("unexpected model error: {e}"),
                }
            }
        }
    }

    println!();
    for (kind, summary) in &summaries {
        println!(
            "{}: average error {:.2} % | max error {:.2} % over {} feasible configurations",
            kind.label(),
            summary.mean(),
            summary.max(),
            summary.count()
        );
    }
    println!("\npaper: avg 0.88 % (CS) / 0.13 % (DWT), max <= 1.74 %; DWT infeasible at 1 MHz");
}
