//! §5.1 delay validation: the Eq. 9 worst-case bound vs packet-level
//! simulation over 130 random feasible configurations with realistic
//! `φout` and `χmac` draws.
//!
//! Candidate screening runs through the full-evaluation batch kernel
//! (`WbsnModel::evaluate_batch_full`): each round of random draws is
//! evaluated as one batch, and feasibility, the per-node Eq. 9 bounds
//! and the Eq. 1 slot counts (the saturation screen's input) are all
//! read from the kernel's flat output lanes. Each candidate's numbers
//! are bit-identical to what scalar `evaluate()` would produce for it —
//! but the *rejection-sampling stream* differs from the pre-batching
//! binary: simulation seeds are now drawn at generation time (screening
//! happens a whole batch later), so the accepted 130-configuration set
//! and the summary statistics are a different (equally valid,
//! deterministic) draw than the old point-by-point loop produced.
//!
//! Paper's result: the bound holds, with an average overestimation below
//! 100 ms (acceptable for the application). The simulation uses the
//! uniform packet-stream traffic abstraction of §4.2 ("data compression
//! ... leads to a uniform output rate") — the same abstraction the
//! paper's Castalia validation relies on.
//!
//! Run: `cargo run --release -p wbsn-bench --bin delay_validation`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbsn_bench::{header, row};
use wbsn_dse::parallel::parallel_map_with_block;
use wbsn_model::evaluate::{NodeConfig, WbsnModel};
use wbsn_model::ieee802154::Ieee802154Config;
use wbsn_model::shimmer::CompressionKind;
use wbsn_model::soa::{FullEvalOut, SoaScratch};
use wbsn_model::space::DesignPoint;
use wbsn_model::units::Hertz;
use wbsn_sim::engine::{NetworkBuilder, TrafficMode};

const RUNS: usize = 130;
const SIM_SECONDS: f64 = 120.0;

/// A model-screened configuration awaiting its validation simulation.
struct Candidate {
    mac: Ieee802154Config,
    nodes: Vec<NodeConfig>,
    /// Worst per-node Eq. 9 bound (from the kernel's delay lane).
    bound_max: f64,
    seed: u64,
}

fn main() {
    let model = WbsnModel::shimmer();
    let mut rng = StdRng::seed_from_u64(2012);
    let mut scratch = SoaScratch::new();
    let mut out = FullEvalOut::new();

    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let mut screened = 0usize;
    let mut violations = 0usize;
    let mut sum_over = 0.0;
    let mut max_over = 0.0f64;
    let mut min_slack = f64::INFINITY;
    let mut shown = 0usize;

    println!(
        "# §5.1 — Eq. 9 worst-case delay bound vs simulation ({RUNS} random configurations)\n"
    );
    println!("(first 10 configurations shown; summary over all {RUNS})\n");
    header(&[
        "cfg",
        "Lpayload",
        "SFO/BCO",
        "N",
        "bound max [ms]",
        "sim max [ms]",
        "overestimate [ms]",
    ]);

    // Candidate generation stays serial (one RNG stream, deterministic);
    // each round's draws are then model-screened as ONE batch through
    // the full-evaluation kernel, and the expensive 120-simulated-second
    // validation runs fan out across cores (block = 1: one simulation is
    // one work unit). Acceptance walks each batch in candidate order, so
    // the accepted set — and every statistic — is independent of thread
    // count (see `crates/wbsn/tests/sim_determinism.rs`).
    while accepted < RUNS {
        // Phase 1: raw draws (MAC-valid; feasibility decided in phase 2).
        let mut raw: Vec<(Ieee802154Config, Vec<NodeConfig>, u64)> = Vec::new();
        while raw.len() < RUNS - accepted {
            attempts += 1;
            assert!(attempts < RUNS * 50, "rejection sampling runaway");
            // Random φout ∈ [40, 250] B/s per node via CR ∈ [0.107, 0.667].
            let n = rng.gen_range(3..=6);
            let nodes: Vec<NodeConfig> = (0..n)
                .map(|i| {
                    let kind = if i % 2 == 0 { CompressionKind::Cs } else { CompressionKind::Dwt };
                    let phi_out = rng.gen_range(40.0..250.0);
                    NodeConfig::new(kind, phi_out / 375.0, Hertz::from_mhz(8.0))
                })
                .collect();
            let payload =
                *[30u16, 50, 70, 90, 114].get(rng.gen_range(0..5usize)).expect("in range");
            let sfo = rng.gen_range(4u8..=7);
            let bco = rng.gen_range(sfo..=8);
            let Ok(mac) = Ieee802154Config::new(payload, sfo, bco) else { continue };
            let seed = rng.gen();
            raw.push((mac, nodes, seed));
        }

        // Phase 2: one kernel batch screens the whole round.
        let points: Vec<DesignPoint> = raw
            .iter()
            .map(|(mac, nodes, _)| DesignPoint {
                mac: *mac,
                nodes: nodes.iter().copied().collect(),
            })
            .collect();
        model.evaluate_batch_full(&points, &mut scratch, &mut out);

        let mut batch: Vec<Candidate> = Vec::new();
        for (i, (mac, nodes, seed)) in raw.iter().enumerate() {
            // Keep only configurations the model itself declares feasible.
            if out.outcomes()[i].is_err() {
                continue;
            }
            let lanes = out.node_range(i);
            // Screen out saturated designs: Eq. 1 sizes the GTS on fluid
            // airtime, but a slot serves an *integer* number of packet
            // transactions. If that integer capacity is below the arrival
            // rate the queue diverges and no delay bound can exist — such
            // configurations are unusable and outside the paper's
            // "realistic" draws.
            let mac_model = wbsn_model::ieee802154::Ieee802154Mac::new(*mac, nodes.len() as u32);
            let transaction = mac_model.packet_transaction_time().value();
            let delta = mac.slot_duration().value();
            let bi = mac.beacon_interval().value();
            let saturated = nodes.iter().zip(&out.slots()[lanes.clone()]).any(|(node, &k)| {
                let arrivals_per_sf = node.cr * 375.0 * bi / f64::from(mac.payload_bytes);
                let capacity_per_sf = (f64::from(k) * delta / transaction).floor();
                capacity_per_sf < arrivals_per_sf * 1.1
            });
            if saturated {
                screened += 1;
                continue;
            }
            let bound_max = out.delay()[lanes].iter().copied().fold(0.0, f64::max);
            batch.push(Candidate { mac: *mac, nodes: nodes.clone(), bound_max, seed: *seed });
        }

        // Phase 3: parallel validation simulations.
        let reports = parallel_map_with_block(
            &batch,
            1,
            || (),
            |(), c| {
                NetworkBuilder::new(c.mac, c.nodes.clone())
                    .duration_s(SIM_SECONDS)
                    .seed(c.seed)
                    .traffic(TrafficMode::PacketStream)
                    .build()
                    .expect("model-feasible configs must build")
                    .run()
            },
        );

        for (candidate, report) in batch.iter().zip(reports) {
            if accepted >= RUNS || !report.all_feasible() {
                continue;
            }
            accepted += 1;

            // Per-configuration: worst node bound vs worst observed delay.
            let bound_max = candidate.bound_max;
            let sim_max: f64 = report.nodes.iter().map(|nr| nr.delay.max_s()).fold(0.0, f64::max);
            let over = bound_max - sim_max;
            if over < 0.0 {
                violations += 1;
            }
            sum_over += over;
            max_over = max_over.max(over);
            min_slack = min_slack.min(over);
            if shown < 10 {
                shown += 1;
                row(&[
                    format!("{accepted}"),
                    format!("{}", candidate.mac.payload_bytes),
                    format!("{}/{}", candidate.mac.sfo, candidate.mac.bco),
                    format!("{}", candidate.nodes.len()),
                    format!("{:.1}", bound_max * 1e3),
                    format!("{:.1}", sim_max * 1e3),
                    format!("{:.1}", over * 1e3),
                ]);
            }
        }
    }

    println!("\nsummary over {accepted} configurations ({screened} saturated draws screened out):");
    println!("  bound violations      : {violations}");
    println!("  average overestimation: {:.1} ms", sum_over / accepted as f64 * 1e3);
    println!("  max overestimation    : {:.1} ms", max_over * 1e3);
    println!("  min slack             : {:.1} ms", min_slack * 1e3);
    println!("\npaper: bound holds; average overestimation < 100 ms over 130 simulations");
}
