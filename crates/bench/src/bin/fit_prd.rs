//! Support experiment: regenerates the fifth-order `P5(CR)` PRD fits of
//! §4.3 from the real DWT/CS codecs running on synthetic ECG.
//!
//! The paper fits its polynomials to the experimental data of [13]; this
//! reproduction fits them to measurements of `wbsn-dsp`. The printed
//! coefficient blocks are what ships as defaults in
//! `wbsn_model::shimmer::{dwt_prd_poly, cs_prd_poly}`.
//!
//! Run: `cargo run --release -p wbsn-bench --bin fit_prd`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wbsn_bench::{header, row};
use wbsn_dsp::compress::{measure_prd, Codec, CsCodec, DwtCodec};
use wbsn_dsp::ecg::EcgGenerator;
use wbsn_model::math::{polyfit, rms_residual};

const BLOCK: usize = 256;
const SECONDS: usize = 64;

fn prd_samples(codec: &Codec, seeds: &[u64]) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let signal = EcgGenerator::default().generate(250 * SECONDS, &mut rng);
        let mut cr = 0.17;
        while cr <= 0.38 + 1e-9 {
            let mut crng = StdRng::seed_from_u64(seed ^ 0xC0DE);
            let report = measure_prd(codec, &signal, BLOCK, cr, &mut crng)
                .expect("256-sample blocks divide the signal");
            xs.push(cr);
            ys.push(report.prd);
            cr += 0.01;
        }
    }
    (xs, ys)
}

fn main() {
    println!("# P5(CR) polynomial fits (support for Fig. 4)\n");
    let seeds = [11, 23, 37];
    for (name, codec) in
        [("DWT", Codec::Dwt(DwtCodec::default())), ("CS", Codec::Cs(CsCodec::default()))]
    {
        let (xs, ys) = prd_samples(&codec, &seeds);
        let poly = polyfit(&xs, &ys, 5).expect("22 CR points x 3 seeds is plenty");
        let (offset, scale) = poly.normalization();
        println!("## {name}\n");
        println!("```rust");
        println!("Polynomial::with_normalization(");
        let coeffs: Vec<String> = poly.coeffs().iter().map(|c| format!("{c:.5}")).collect();
        println!("    vec![{}],", coeffs.join(", "));
        println!("    {offset:.3},");
        println!("    {scale:.3},");
        println!(")");
        println!("```\n");
        println!(
            "RMS residual: {:.3} PRD points over {} samples\n",
            rms_residual(&poly, &xs, &ys),
            xs.len()
        );
        header(&["CR", "measured PRD %", "fitted PRD %"]);
        let mut cr = 0.17;
        while cr <= 0.38 + 1e-9 {
            let measured: Vec<f64> = xs
                .iter()
                .zip(&ys)
                .filter(|(&x, _)| (x - cr).abs() < 1e-9)
                .map(|(_, &y)| y)
                .collect();
            let mean = measured.iter().sum::<f64>() / measured.len() as f64;
            row(&[format!("{cr:.2}"), format!("{mean:.2}"), format!("{:.2}", poly.eval(cr))]);
            cr += 0.03;
        }
        println!();
    }
}
