//! Statistical model-vs-sim fidelity harness over scenario families.
//!
//! The paper validates its analytical model against simulation on a
//! single hand-picked 6-node body-area deployment (Fig. 3, §5.1). This
//! module measures how far that fidelity *generalizes*: for every
//! [`fidelity_families`] family it samples N seeded scenarios, runs each
//! through **both** full-evaluation batch kernels
//! ([`WbsnModel::evaluate_batch_full`] and the MAC-grouped variant) and
//! the `wbsn-sim` discrete-event simulator, and folds the per-node
//! disagreements into one [`FamilyEnvelope`] per family:
//!
//! * **energy** — per-node total consumption (Eq. 7, mJ/s) against the
//!   simulator's measured breakdown, as mean/max relative error;
//! * **delay** — the Eq. 9 worst-case bound against the simulated delay
//!   distribution under `TrafficMode::PacketStream` (the traffic the
//!   bound is stated for: scheduled GTS streams, see
//!   `crates/wbsn/tests/delay_bound.rs`), as the minimum headroom factor
//!   `bound / observed-max` (≥ 1 ⟺ the bound held) and the maximum
//!   utilization (how tight, i.e. non-vacuous, the bound is);
//! * **PRD** — the polynomial quality model against the real DWT/CS
//!   codecs on held-out synthetic ECG, as max absolute error in PRD
//!   points.
//!
//! Every measurement is a pure function of the seeds (deterministic
//! generators, deterministic simulator, seeded codec noise), so the
//! rendered per-family table is golden-snapshotted bitwise
//! (`benchmarks/golden/fidelity_*.txt`) and the envelope scores are
//! floor-gated in `bench_gate` through the shared `MIN_*` constants
//! below — the same constants the tier-1 `model_vs_sim` suite asserts,
//! so the gate and the test can never disagree.
//!
//! The harness also *asserts* (not assumes) two kernel invariants while
//! it measures: both full kernels agree bitwise on every lane, and the
//! scalar-spill counter accounts for exactly every point of an off-axis
//! family (and none of an on-axis one).
//!
//! [`WbsnModel::evaluate_batch_full`]: wbsn_model::evaluate::WbsnModel::evaluate_batch_full
//! [`fidelity_families`]: wbsn_dse::scenario::fidelity_families

use crate::{header_to, percent_error, row_to, ErrorSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wbsn_dse::parallel::parallel_map_with;
use wbsn_dse::scenario::{fidelity_families, AxisPolicy, ScenarioFamily, Traffic};
use wbsn_dsp::compress::{measure_prd, Codec, CsCodec, DwtCodec};
use wbsn_dsp::ecg::EcgGenerator;
use wbsn_model::evaluate::WbsnModel;
use wbsn_model::shimmer::CompressionKind;
use wbsn_model::soa::{FullEvalOut, SoaScratch};
use wbsn_model::space::DesignPoint;
use wbsn_sim::engine::{NetworkBuilder, TrafficMode};
use wbsn_sim::AlertConfig;

/// Scenarios sampled per family in the tier-1 (default) sweep. The
/// golden snapshots are blessed at exactly this count.
pub const TIER1_SAMPLES: usize = 2;

/// Scenarios per family under `FIDELITY_FULL=1` (the deep sweep: floors
/// only, no golden comparison — goldens are tier-1-shaped).
pub const FULL_SAMPLES: usize = 6;

/// First seed of every family's sample window (`base..base + n`).
pub const BASE_SEED: u64 = 1000;

/// Simulated seconds for the energy-agreement runs (long enough that
/// per-frame quantization noise settles under the floor's headroom).
pub const ENERGY_SIM_S: f64 = 40.0;

/// Simulated seconds for the delay-distribution runs
/// (`TrafficMode::PacketStream`).
pub const DELAY_SIM_S: f64 = 20.0;

/// Energy floor: the worst per-node agreement percent
/// (`100 − max relative error %`) any family may report. Measured
/// envelope (tier-1 and `FIDELITY_FULL` sweeps): worst family ≈ 97 %
/// agreement; the floor leaves ~3 points of headroom.
pub const MIN_ENERGY_AGREEMENT_PCT: f64 = 94.0;

/// Delay floor: the minimum headroom factor `Eq. 9 bound / observed
/// max delay`. 1.0 is the correctness line — the bound must never be
/// observed violated; every measured family sits well above it.
pub const MIN_DELAY_HEADROOM: f64 = 1.0;

/// Delay tightness floor on `1 / max utilization`: the bound must stay
/// non-vacuous (within ~4× of an observed delay; the delay-bound suite
/// uses the same order of tightness).
pub const MIN_DELAY_TIGHTNESS: f64 = 0.25;

/// PRD floor: the margin `10 − max |polynomial − measured|` in PRD
/// points (10 spans the worst codec tolerance of the Fig. 4 suite).
/// Measured (tier-1 and `FIDELITY_FULL` sweeps): the DWT polynomial
/// stays within ~2 PRD points everywhere; the coarse CS fit reaches
/// ~6.9 points on one `cluster-bursty` node, so the worst margin is
/// ≈ 3.1 and the floor sits at 2.5.
pub const MIN_PRD_MARGIN: f64 = 2.5;

/// Per-family scenario count honouring `FIDELITY_FULL=1`.
#[must_use]
pub fn sample_count() -> usize {
    if std::env::var("FIDELITY_FULL").is_ok_and(|v| v == "1") {
        FULL_SAMPLES
    } else {
        TIER1_SAMPLES
    }
}

/// The measured model-vs-sim error envelope of one scenario family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyEnvelope {
    /// Family name (table rows, golden files, gate fields).
    pub family: &'static str,
    /// Scenarios sampled.
    pub scenarios: usize,
    /// Per-node observations folded in (scenarios × nodes).
    pub node_obs: usize,
    /// Mean per-node total-energy relative error, percent.
    pub energy_mean_err_pct: f64,
    /// Worst per-node total-energy relative error, percent.
    pub energy_max_err_pct: f64,
    /// Minimum `bound / observed max delay` over all nodes (≥ 1 ⟺ the
    /// Eq. 9 bound held everywhere it was observed).
    pub delay_headroom_min: f64,
    /// Maximum `observed max delay / bound` (bound tightness).
    pub delay_util_max: f64,
    /// Worst absolute PRD disagreement, in PRD points.
    pub prd_max_err: f64,
    /// Scalar-spill count accounted by the batch kernel over every
    /// sampled point (= points for off-axis families, 0 for on-axis).
    pub spills: u64,
}

impl FamilyEnvelope {
    /// Gated energy score: agreement percent (higher is better).
    #[must_use]
    pub fn energy_agreement_pct(&self) -> f64 {
        100.0 - self.energy_max_err_pct
    }

    /// Gated delay score: minimum bound headroom (higher is better;
    /// < 1 means the Eq. 9 bound was observed violated).
    #[must_use]
    pub fn delay_headroom(&self) -> f64 {
        self.delay_headroom_min
    }

    /// Gated PRD score: margin below the 10-point budget (higher is
    /// better).
    #[must_use]
    pub fn prd_margin(&self) -> f64 {
        10.0 - self.prd_max_err
    }
}

/// The `BENCH_dse.json` / `bench_gate` field name for one family ×
/// metric pair, e.g. `fidelity_energy_body_area_periodic`.
#[must_use]
pub fn gate_field(family: &str, metric: &str) -> String {
    format!("fidelity_{metric}_{}", family.replace('-', "_"))
}

/// Runs both full batch kernels over `points`, asserts they agree
/// bitwise on every outcome and every per-node lane, asserts the
/// scalar-spill accounting matches the family's axis policy, and
/// returns the (shared) output of the plain kernel.
fn both_kernels_bitwise(
    model: &WbsnModel,
    family: &ScenarioFamily,
    points: &[DesignPoint],
) -> FullEvalOut {
    let (mut soa_a, mut soa_b) = (SoaScratch::new(), SoaScratch::new());
    let (mut out_a, mut out_b) = (FullEvalOut::new(), FullEvalOut::new());
    model.evaluate_batch_full(points, &mut soa_a, &mut out_a);
    model.evaluate_batch_full_grouped(points, &mut soa_b, &mut out_b);

    assert_eq!(out_a.outcomes(), out_b.outcomes(), "{}: kernel outcomes diverge", family.name);
    for (lane, a, b) in [
        ("sensor", out_a.sensor(), out_b.sensor()),
        ("mcu", out_a.mcu(), out_b.mcu()),
        ("memory", out_a.memory(), out_b.memory()),
        ("radio", out_a.radio(), out_b.radio()),
        ("energy", out_a.energy(), out_b.energy()),
        ("delay", out_a.delay(), out_b.delay()),
        ("prd", out_a.prd(), out_b.prd()),
    ] {
        assert_eq!(a.len(), b.len(), "{}: {lane} lane shape diverges", family.name);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{}: {lane} lane diverges between kernels at {i}",
                family.name
            );
        }
    }

    // The spill path is exercised exactly as the axis policy promises —
    // asserted via the kernel's own accounting, not assumed from the
    // generator's intent. Both kernels must agree.
    let expected = match family.axis_policy {
        AxisPolicy::OffAxis => points.len() as u64,
        AxisPolicy::OnAxis => 0,
    };
    assert_eq!(soa_a.spill_count(), expected, "{}: plain-kernel spill count", family.name);
    assert_eq!(soa_b.spill_count(), expected, "{}: grouped-kernel spill count", family.name);
    out_a
}

/// Measures the fidelity envelope of one family over `n` seeded
/// scenarios starting at `base_seed`.
///
/// # Panics
///
/// Panics when a structural invariant fails: the two batch kernels
/// disagree bitwise, the spill accounting contradicts the axis policy,
/// a fidelity scenario turns out infeasible, or a simulation reports an
/// overrun. Envelope *quality* (how large the errors are) is never
/// asserted here — that is the floors' job, in the tier-1 suite and the
/// bench gate.
#[must_use]
pub fn measure_family(
    model: &WbsnModel,
    family: &ScenarioFamily,
    n: usize,
    base_seed: u64,
) -> FamilyEnvelope {
    let scenarios = family.sample(n, base_seed);
    let points: Vec<DesignPoint> =
        scenarios.iter().map(wbsn_dse::scenario::Scenario::point).collect();
    let full = both_kernels_bitwise(model, family, &points);

    // Held-out ECG for the PRD ground truth (seed disjoint from the
    // polynomial-fitting seeds; 250 Hz × 32 s → 31 full 256-blocks,
    // the Fig. 4 suite's length, which keeps the CS measurement
    // variance inside the floor's margin).
    let signal = {
        let mut rng = StdRng::seed_from_u64(777);
        EcgGenerator::default().generate(250 * 32, &mut rng)
    };

    let mut energy = ErrorSummary::new();
    let mut delay_headroom_min = f64::INFINITY;
    let mut delay_util_max = 0.0f64;
    let mut delay_obs = 0u64;
    let mut prd_max_err = 0.0f64;
    let mut node_obs = 0usize;

    for (si, scenario) in scenarios.iter().enumerate() {
        let lanes = full.node_range(si);
        assert!(
            full.outcomes()[si].is_ok(),
            "{} seed {}: fidelity scenarios are feasible by construction",
            family.name,
            scenario.seed
        );

        // Energy: simulate in the family's own traffic mode (bursty
        // alert traffic is deliberately outside the analytical model —
        // its cost lands in the error envelope, not under the rug).
        let mut energy_sim = NetworkBuilder::new(scenario.mac, scenario.nodes.clone())
            .duration_s(ENERGY_SIM_S)
            .seed(scenario.seed)
            .distances(scenario.distances_m.clone());
        if let Traffic::EventBursts { mean_interval_s, payload_bytes } = scenario.traffic {
            energy_sim = energy_sim.alerts(AlertConfig { mean_interval_s, payload_bytes });
        }
        let energy_report = energy_sim.build().expect("feasible by construction").run();
        assert!(
            energy_report.all_feasible(),
            "{} seed {}: energy sim overran",
            family.name,
            scenario.seed
        );
        for (lane, node_report) in lanes.clone().zip(&energy_report.nodes) {
            energy.record(percent_error(full.energy()[lane], node_report.energy.total_mj_s()));
        }

        // Delay: the Eq. 9 bound covers the scheduled GTS stream, so
        // the distribution it is checked against is simulated under
        // `PacketStream` with no alert traffic (the delay-bound suite's
        // idiom).
        let delay_report = NetworkBuilder::new(scenario.mac, scenario.nodes.clone())
            .duration_s(DELAY_SIM_S)
            .seed(scenario.seed ^ 0x5EED)
            .distances(scenario.distances_m.clone())
            .traffic(TrafficMode::PacketStream)
            .build()
            .expect("feasible by construction")
            .run();
        for (lane, node_report) in lanes.clone().zip(&delay_report.nodes) {
            if node_report.delay.count() == 0 {
                continue;
            }
            delay_obs += node_report.delay.count();
            let bound = full.delay()[lane];
            let observed = node_report.delay.max_s();
            delay_headroom_min = delay_headroom_min.min(bound / observed);
            delay_util_max = delay_util_max.max(observed / bound);
        }

        // PRD: the polynomial estimate in the kernel's lane against the
        // real codec on held-out ECG, per node (off-axis CRs exercise
        // the polynomials between their fitting knots).
        for (ni, (lane, node)) in lanes.clone().zip(&scenario.nodes).enumerate() {
            let codec = match node.kind {
                CompressionKind::Dwt => Codec::Dwt(DwtCodec::default()),
                CompressionKind::Cs => Codec::Cs(CsCodec::default()),
            };
            let mut rng =
                StdRng::seed_from_u64(scenario.seed.wrapping_add(ni as u64 * 0x9E37_79B9));
            let measured = measure_prd(&codec, &signal, 256, node.cr, &mut rng)
                .expect("16 s of ECG holds full blocks")
                .prd;
            prd_max_err = prd_max_err.max((full.prd()[lane] - measured).abs());
            node_obs += 1;
        }
    }

    assert!(delay_obs > 0, "{}: delay envelope would be vacuous", family.name);
    FamilyEnvelope {
        family: family.name,
        scenarios: scenarios.len(),
        node_obs,
        energy_mean_err_pct: energy.mean(),
        energy_max_err_pct: energy.max(),
        delay_headroom_min,
        delay_util_max,
        prd_max_err,
        spills: match family.axis_policy {
            AxisPolicy::OffAxis => points.len() as u64,
            AxisPolicy::OnAxis => 0,
        },
    }
}

/// Measures every fidelity family (in parallel — each family is a pure
/// function of its seeds, so the result is thread-count independent).
#[must_use]
pub fn measure_all(n: usize, base_seed: u64) -> Vec<FamilyEnvelope> {
    let families = fidelity_families();
    parallel_map_with(&families, WbsnModel::shimmer, |model, family| {
        measure_family(model, family, n, base_seed)
    })
}

/// Renders envelopes as a deterministic Markdown table (the golden /
/// report format).
#[must_use]
pub fn render_envelopes(envelopes: &[FamilyEnvelope]) -> String {
    let mut buf = String::new();
    header_to(
        &mut buf,
        &[
            "family",
            "scenarios",
            "node-obs",
            "energy mean err %",
            "energy max err %",
            "delay headroom min",
            "delay util max",
            "PRD max err",
            "spills",
        ],
    );
    for e in envelopes {
        row_to(
            &mut buf,
            &[
                e.family.to_string(),
                e.scenarios.to_string(),
                e.node_obs.to_string(),
                format!("{:.4}", e.energy_mean_err_pct),
                format!("{:.4}", e.energy_max_err_pct),
                format!("{:.4}", e.delay_headroom_min),
                format!("{:.4}", e.delay_util_max),
                format!("{:.4}", e.prd_max_err),
                e.spills.to_string(),
            ],
        );
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_field_names_are_json_safe() {
        assert_eq!(
            gate_field("body-area-periodic", "energy"),
            "fidelity_energy_body_area_periodic"
        );
        assert!(gate_field("hex-grid-bursty", "delay")
            .chars()
            .all(|c| c == '_' || c.is_ascii_alphanumeric()));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let e = FamilyEnvelope {
            family: "body-area-periodic",
            scenarios: 2,
            node_obs: 12,
            energy_mean_err_pct: 1.25,
            energy_max_err_pct: 2.5,
            delay_headroom_min: 1.75,
            delay_util_max: 0.5714,
            prd_max_err: 3.125,
            spills: 0,
        };
        let a = render_envelopes(std::slice::from_ref(&e));
        assert_eq!(a, render_envelopes(&[e]));
        assert!(a.contains(
            "| body-area-periodic | 2 | 12 | 1.2500 | 2.5000 | 1.7500 | 0.5714 | 3.1250 | 0 |"
        ));
    }

    #[test]
    fn scores_orient_higher_is_better() {
        let worse = FamilyEnvelope {
            family: "x",
            scenarios: 1,
            node_obs: 1,
            energy_mean_err_pct: 5.0,
            energy_max_err_pct: 9.0,
            delay_headroom_min: 1.1,
            delay_util_max: 0.9,
            prd_max_err: 6.0,
            spills: 0,
        };
        let better = FamilyEnvelope {
            energy_max_err_pct: 2.0,
            delay_headroom_min: 3.0,
            prd_max_err: 1.0,
            ..worse.clone()
        };
        assert!(better.energy_agreement_pct() > worse.energy_agreement_pct());
        assert!(better.delay_headroom() > worse.delay_headroom());
        assert!(better.prd_margin() > worse.prd_margin());
    }

    #[test]
    fn tier1_sampling_is_the_default() {
        // (Does not manipulate the environment: asserting the constant
        // wiring only, so parallel tests cannot race on env state.)
        const { assert!(TIER1_SAMPLES < FULL_SAMPLES) };
        assert!(sample_count() == TIER1_SAMPLES || sample_count() == FULL_SAMPLES);
    }
}
