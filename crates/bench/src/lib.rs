//! # wbsn-bench — experiment harness for the DAC 2012 reproduction
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`):
//!
//! | binary | artefact |
//! |---|---|
//! | `fig3_energy` | Fig. 3 — node energy, model vs simulation |
//! | `fig4_prd` | Fig. 4 — PRD, polynomial model vs real codecs |
//! | `delay_validation` | §5.1 — Eq. 9 bound vs 130 simulations |
//! | `fig5_pareto` | Fig. 5 — 3-objective vs energy/delay Pareto fronts |
//! | `dse_throughput` | §5.2 — model vs simulation evaluation speed |
//! | `optimizer_comparison` | §5.2 — NSGA-II vs MOSA vs random |
//! | `fit_prd` | support — regenerates the `P5(CR)` coefficients |
//!
//! This library holds the small shared reporting helpers.

#![warn(missing_docs)]

pub mod fidelity;
pub mod figures;
pub mod golden;

/// Relative error of `estimate` against `reference`, in percent.
///
/// ```
/// assert!((wbsn_bench::percent_error(102.0, 100.0) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn percent_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return 0.0;
    }
    ((estimate - reference) / reference).abs() * 100.0
}

use std::fmt::Write as _;

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// [`row`] into a string buffer — the golden-figure generators build
/// their whole report as one deterministic string (see [`figures`]).
pub fn row_to(buf: &mut String, cells: &[String]) {
    let _ = writeln!(buf, "| {} |", cells.join(" | "));
}

/// [`header`] into a string buffer.
pub fn header_to(buf: &mut String, cells: &[&str]) {
    let _ = writeln!(buf, "| {} |", cells.join(" | "));
    let _ = writeln!(buf, "|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Simple accumulator for average/maximum error summaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorSummary {
    count: u64,
    sum: f64,
    max: f64,
}

impl ErrorSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one error observation (percent).
    pub fn record(&mut self, err: f64) {
        self.count += 1;
        self.sum += err;
        self.max = self.max.max(err);
    }

    /// Mean error in percent.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum error in percent.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_error_cases() {
        assert_eq!(percent_error(1.0, 0.0), 0.0);
        assert!((percent_error(98.26, 100.0) - 1.74).abs() < 1e-9);
        assert!((percent_error(100.0, 98.0) - 2.0408163265306123).abs() < 1e-9);
    }

    #[test]
    fn summary_accumulates() {
        let mut s = ErrorSummary::new();
        s.record(1.0);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.max() - 3.0).abs() < 1e-12);
    }
}
