//! Golden ground-truth fronts: the exact full-space Pareto front of
//! every [`wbsn_dse::truth`] scenario, snapshotted under
//! `benchmarks/golden/truth_<scenario>.txt` and compared **bitwise**.
//!
//! The fronts are computed through the axis-major incremental sweep
//! (`exhaustive_incremental`), which is property-tested bit-identical
//! to the canonical sweep and to the scalar reference model — so this
//! suite locks the *entire* evaluation chain: space enumeration, the
//! `SoA` batch kernels, the axis-run fast path, feasibility screening
//! and Pareto archiving. Any drift in any of those layers moves at
//! least one objective bit and fails at the first diverging line.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --release -p wbsn-bench --test golden_truth
//! ```
//!
//! (release strongly recommended: the scenarios total ~1.3M design
//! points) and commit the updated files under `benchmarks/golden/`.

use wbsn_bench::golden::assert_matches_golden;
use wbsn_dse::evaluator::ModelEvaluator;
use wbsn_dse::truth::{scenarios, TruthFront};

#[test]
fn truth_fronts_match_golden() {
    let eval = ModelEvaluator::shimmer();
    for scenario in scenarios() {
        let front = TruthFront::compute(&scenario, &eval);
        assert_matches_golden(&format!("truth_{}.txt", scenario.name), &front.render());
    }
}
