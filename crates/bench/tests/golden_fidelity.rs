//! Golden snapshots of the per-family fidelity envelopes.
//!
//! Every measurement in the harness is a pure function of fixed seeds
//! (deterministic generators, deterministic simulator, seeded codec
//! noise), so the rendered envelope of each family is compared bitwise
//! against `benchmarks/golden/fidelity_<family>.txt` at the fixed
//! tier-1 sample count — `FIDELITY_FULL` never changes the goldens'
//! shape, only the separate floor sweep. Re-bless after an intentional
//! model/sim/generator change with `GOLDEN_BLESS=1`.

use wbsn_bench::fidelity::{
    measure_all, render_envelopes, FamilyEnvelope, BASE_SEED, MIN_DELAY_HEADROOM,
    MIN_ENERGY_AGREEMENT_PCT, MIN_PRD_MARGIN, TIER1_SAMPLES,
};
use wbsn_bench::golden::assert_matches_golden;

/// One measurement pass shared by every check in this file (the sims
/// dominate the cost; rendering and floor checks are free).
fn envelopes() -> Vec<FamilyEnvelope> {
    measure_all(TIER1_SAMPLES, BASE_SEED)
}

#[test]
fn fidelity_envelopes_match_their_goldens_and_floors() {
    let envelopes = envelopes();
    assert!(envelopes.len() >= 6, "the fidelity set shrank");
    for e in &envelopes {
        let name = format!("fidelity_{}.txt", e.family.replace('-', "_"));
        assert_matches_golden(&name, &render_envelopes(std::slice::from_ref(e)));

        // The same floors the bench gate enforces on BENCH_dse.json —
        // shared constants, so the gate and this test cannot disagree.
        assert!(
            e.energy_agreement_pct() >= MIN_ENERGY_AGREEMENT_PCT,
            "{}: energy agreement {:.4} below floor",
            e.family,
            e.energy_agreement_pct()
        );
        assert!(
            e.delay_headroom() >= MIN_DELAY_HEADROOM,
            "{}: Eq. 9 bound observed violated (headroom {:.4})",
            e.family,
            e.delay_headroom()
        );
        assert!(
            e.prd_margin() >= MIN_PRD_MARGIN,
            "{}: PRD margin {:.4} below floor",
            e.family,
            e.prd_margin()
        );
    }
}
