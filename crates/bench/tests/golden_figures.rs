//! Golden-figure regression: the numeric tables of the paper-figure
//! binaries (`fig3_energy`, `fig4_prd`, `fig5_pareto`) are snapshotted
//! under `benchmarks/golden/` and regenerated here through the batch
//! evaluation path — compared **bitwise**, so figure output can never
//! silently drift (a model change, a kernel change, an RNG change or a
//! formatting change all fail loudly).
//!
//! The tables are fully deterministic: seeded simulator runs, seeded
//! NSGA-II searches (bit-identical across thread counts — see
//! `crates/dse`'s determinism tests), and batch kernels proven
//! bit-identical to the scalar model. The one environmental assumption
//! is libm: the synthetic-ECG generator calls `sin`/`cos`, whose last
//! bits may differ across C libraries. If a golden mismatch points
//! there (sim columns only, model columns identical), re-bless on the
//! machine class that runs CI.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p wbsn-bench --test golden_figures
//! ```
//!
//! and commit the updated files under `benchmarks/golden/`.

use std::path::PathBuf;
use wbsn_bench::figures;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks/golden")).join(name)
}

/// Compares `actual` against the committed snapshot (or rewrites the
/// snapshot under `GOLDEN_BLESS=1`).
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true")) {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create benchmarks/golden");
        std::fs::write(&path, actual).expect("write blessed golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n\
             (generate it with GOLDEN_BLESS=1 cargo test -p wbsn-bench --test golden_figures)",
            path.display()
        )
    });
    if expected != actual {
        // Find the first diverging line for a readable failure.
        let mut diff = String::from("<tables have different line counts>");
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                diff = format!("first divergence at line {}:\n  golden: {e}\n  actual: {a}", i + 1);
                break;
            }
        }
        panic!(
            "{name} drifted from its golden snapshot ({} vs {} bytes)\n{diff}\n\
             If the change is intentional, re-bless with GOLDEN_BLESS=1.",
            expected.len(),
            actual.len()
        );
    }
}

#[test]
fn fig3_energy_matches_golden() {
    assert_matches_golden("fig3_energy.txt", &figures::fig3_table());
}

#[test]
fn fig4_prd_matches_golden() {
    assert_matches_golden("fig4_prd.txt", &figures::fig4_table());
}

#[test]
fn fig5_pareto_matches_golden() {
    assert_matches_golden("fig5_pareto.txt", &figures::fig5_table());
}
