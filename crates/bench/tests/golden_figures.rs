//! Golden-figure regression: the numeric tables of the paper-figure
//! binaries (`fig3_energy`, `fig4_prd`, `fig5_pareto`) are snapshotted
//! under `benchmarks/golden/` and regenerated here through the batch
//! evaluation path — compared **bitwise** via
//! [`wbsn_bench::golden::assert_matches_golden`], so figure output can
//! never silently drift (a model change, a kernel change, an RNG
//! change or a formatting change all fail loudly).
//!
//! The tables are fully deterministic: seeded simulator runs, seeded
//! NSGA-II searches (bit-identical across thread counts — see
//! `crates/dse`'s determinism tests), and batch kernels proven
//! bit-identical to the scalar model. The one environmental assumption
//! is libm: the synthetic-ECG generator calls `sin`/`cos`, whose last
//! bits may differ across C libraries. If a golden mismatch points
//! there (sim columns only, model columns identical), re-bless on the
//! machine class that runs CI.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p wbsn-bench --test golden_figures
//! ```
//!
//! and commit the updated files under `benchmarks/golden/`.

use wbsn_bench::figures;
use wbsn_bench::golden::assert_matches_golden;

#[test]
fn fig3_energy_matches_golden() {
    assert_matches_golden("fig3_energy.txt", &figures::fig3_table());
}

#[test]
fn fig4_prd_matches_golden() {
    assert_matches_golden("fig4_prd.txt", &figures::fig4_table());
}

#[test]
fn fig5_pareto_matches_golden() {
    assert_matches_golden("fig5_pareto.txt", &figures::fig5_table());
}
